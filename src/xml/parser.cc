#include "src/xml/parser.h"

#include <cctype>
#include <string>

#include "src/util/strings.h"

namespace txml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsWhitespaceOnly(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Recursive-descent XML parser over a string_view with line tracking.
class Parser {
 public:
  Parser(std::string_view text, ParseOptions options)
      : text_(text), options_(options) {}

  StatusOr<std::unique_ptr<XmlNode>> ParseDocument(bool allow_prolog) {
    SkipMisc(allow_prolog);
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc(allow_prolog);
    if (!AtEnd()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  bool Consume(std::string_view expected) {
    if (text_.substr(pos_).substr(0, expected.size()) != expected) {
      return false;
    }
    for (size_t i = 0; i < expected.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& message) {
    return Status::ParseError("line " + std::to_string(line_) + ": " +
                              message);
  }

  /// Skips whitespace, comments, PIs, the XML declaration and DOCTYPE.
  void SkipMisc(bool allow_prolog) {
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '<') return;
      if (PeekAt(1) == '?') {
        // Processing instruction or XML declaration.
        while (!AtEnd() && !(Peek() == '?' && PeekAt(1) == '>')) Advance();
        if (!AtEnd()) {
          Advance();
          Advance();
        }
      } else if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
        SkipOrKeepComment(nullptr);
      } else if (allow_prolog && PeekAt(1) == '!') {
        // DOCTYPE — skip to matching '>'. Internal subsets with nested
        // brackets are skipped bracket-aware.
        int depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  /// At a "<!--"; consumes it. If out != nullptr and comments are kept,
  /// appends a comment node.
  void SkipOrKeepComment(XmlNode* out) {
    Consume("<!--");
    std::string body;
    while (!AtEnd() && !(Peek() == '-' && PeekAt(1) == '-' &&
                         PeekAt(2) == '>')) {
      body.push_back(Peek());
      Advance();
    }
    Consume("-->");
    if (out != nullptr && options_.keep_comments) {
      out->AddChild(XmlNode::Comment(std::move(body)));
    }
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  /// Decodes one entity reference positioned at '&'.
  StatusOr<std::string> ParseEntity() {
    Advance();  // '&'
    std::string entity;
    while (!AtEnd() && Peek() != ';' && entity.size() < 10) {
      entity.push_back(Peek());
      Advance();
    }
    if (AtEnd() || Peek() != ';') return Error("unterminated entity");
    Advance();  // ';'
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "amp") return std::string("&");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string_view digits(entity);
      digits.remove_prefix(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.remove_prefix(1);
      }
      if (digits.empty()) return Error("empty character reference");
      uint32_t code = 0;
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return Error("bad character reference '&" + entity + ";'");
        }
        code = code * static_cast<uint32_t>(base) +
               static_cast<uint32_t>(digit);
        if (code > 0x10FFFF) return Error("character reference out of range");
      }
      return EncodeUtf8(code);
    }
    return Error("unknown entity '&" + entity + ";'");
  }

  static std::string EncodeUtf8(uint32_t code) {
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  StatusOr<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        auto entity = ParseEntity();
        if (!entity.ok()) return entity.status();
        value += *entity;
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  StatusOr<std::unique_ptr<XmlNode>> ParseElement() {
    Advance();  // '<'
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto element = XmlNode::Element(std::move(*name));

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '='");
      Advance();
      SkipWhitespace();
      auto attr_value = ParseAttributeValue();
      if (!attr_value.ok()) return attr_value.status();
      if (element->FindAttribute(*attr_name) != nullptr) {
        return Error("duplicate attribute '" + *attr_name + "'");
      }
      element->AddChild(
          XmlNode::Attribute(std::move(*attr_name), std::move(*attr_value)));
    }

    if (Peek() == '/') {
      Advance();
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      Advance();
      return element;
    }
    Advance();  // '>'

    // Content.
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      if (options_.keep_whitespace_text || !IsWhitespaceOnly(text)) {
        element->AddChild(XmlNode::Text(std::move(text)));
      }
      text.clear();
    };

    while (true) {
      if (AtEnd()) {
        return Error("unterminated element '" + element->name() + "'");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          Advance();
          Advance();
          auto close_name = ParseName();
          if (!close_name.ok()) return close_name.status();
          if (*close_name != element->name()) {
            return Error("mismatched close tag '</" + *close_name +
                         ">' for '<" + element->name() + ">'");
          }
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Error("expected '>'");
          Advance();
          return element;
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
          flush_text();
          SkipOrKeepComment(element.get());
          continue;
        }
        if (PeekAt(1) == '!' && Consume("<![CDATA[")) {
          while (!AtEnd() && !(Peek() == ']' && PeekAt(1) == ']' &&
                               PeekAt(2) == '>')) {
            text.push_back(Peek());
            Advance();
          }
          if (!Consume("]]>")) return Error("unterminated CDATA section");
          continue;
        }
        if (PeekAt(1) == '?') {
          flush_text();
          while (!AtEnd() && !(Peek() == '?' && PeekAt(1) == '>')) Advance();
          if (!Consume("?>")) return Error("unterminated processing instruction");
          continue;
        }
        // Child element.
        flush_text();
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        element->AddChild(std::move(*child));
        continue;
      }
      if (Peek() == '&') {
        auto entity = ParseEntity();
        if (!entity.ok()) return entity.status();
        text += *entity;
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
  }

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<XmlDocument> ParseXml(std::string_view text, ParseOptions options) {
  Parser parser(text, options);
  auto root = parser.ParseDocument(/*allow_prolog=*/true);
  if (!root.ok()) return root.status();
  return XmlDocument(std::move(*root));
}

StatusOr<std::unique_ptr<XmlNode>> ParseXmlFragment(std::string_view text,
                                                    ParseOptions options) {
  Parser parser(text, options);
  return parser.ParseDocument(/*allow_prolog=*/false);
}

}  // namespace txml
