#ifndef TXML_SRC_XML_CODEC_H_
#define TXML_SRC_XML_CODEC_H_

#include <memory>
#include <string>

#include "src/util/coding.h"
#include "src/util/statusor.h"
#include "src/xml/node.h"

namespace txml {

/// Compact binary encoding of an XML subtree, preserving XIDs and
/// timestamps. Used for complete stored versions, snapshots, and the
/// subtrees carried inside completed deltas. Varint-based; framing and
/// checksumming are the storage layer's job.
void EncodeNode(const XmlNode& node, std::string* dst);

/// Decodes one subtree produced by EncodeNode, consuming from `decoder`.
StatusOr<std::unique_ptr<XmlNode>> DecodeNode(Decoder* decoder);

/// Convenience: encode to a fresh string / decode an entire buffer.
std::string EncodeNodeToString(const XmlNode& node);
StatusOr<std::unique_ptr<XmlNode>> DecodeNodeFromString(std::string_view data);

}  // namespace txml

#endif  // TXML_SRC_XML_CODEC_H_
