#ifndef TXML_SRC_XML_SERIALIZER_H_
#define TXML_SRC_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "src/xml/node.h"

namespace txml {

/// Serialization options.
struct SerializeOptions {
  /// Indent with two spaces per level and newlines between elements.
  bool pretty = false;
  /// Emit xid="…" bookkeeping attributes on elements (useful for debugging
  /// and for the edit-script XML representation).
  bool emit_xids = false;
};

/// Serializes a subtree to XML text. Attribute children are folded into the
/// start tag; text is escaped.
std::string SerializeXml(const XmlNode& node, SerializeOptions options = {});

/// Escapes &, <, >, " and ' for use in text content / attribute values.
std::string EscapeXml(std::string_view text);

}  // namespace txml

#endif  // TXML_SRC_XML_SERIALIZER_H_
