#ifndef TXML_SRC_XML_PATH_H_
#define TXML_SRC_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/statusor.h"
#include "src/xml/node.h"

namespace txml {

/// One step of a path expression: an axis plus a name test.
struct PathStep {
  enum class Axis {
    kChild,       // "/name"
    kDescendant,  // "//name"
  };

  Axis axis = Axis::kChild;
  /// Element (or attribute) name; "*" matches any element.
  std::string name;
  /// True for attribute steps ("@name"); only valid as the final step.
  bool is_attribute = false;

  bool operator==(const PathStep&) const = default;
};

/// A parsed XPath-like location path: the subset used by the paper's query
/// dialect — child and descendant axes, name tests, '*' wildcard, and a
/// final attribute step. Examples:
///
///   /guide/restaurant        (absolute)
///   restaurant/name          (relative)
///   //restaurant//price      (descendant axes)
///   restaurant/@rating       (attribute)
class PathExpr {
 public:
  /// Parses a path. A leading '/' makes the path absolute (evaluated from
  /// the document node, so "/guide" selects a root element named guide);
  /// a leading "//" selects descendants at any depth.
  static StatusOr<PathExpr> Parse(std::string_view text);

  const std::vector<PathStep>& steps() const { return steps_; }
  bool absolute() const { return absolute_; }
  bool empty() const { return steps_.empty(); }

  /// Selects matching nodes starting from `root` taken as the document's
  /// root *element*. Relative paths are evaluated as if starting with a
  /// descendant-or-self step from the document node (so "restaurant" finds
  /// restaurants anywhere — matching how the paper's FROM-clause variables
  /// bind). Results are in document order, without duplicates.
  std::vector<const XmlNode*> Evaluate(const XmlNode& root) const;

  /// Evaluates relative to a context node: the first step's axis applies to
  /// `context`'s children/descendants. Used for WHERE-clause paths like
  /// R/price.
  std::vector<const XmlNode*> EvaluateRelative(const XmlNode& context) const;

  std::string ToString() const;

 private:
  std::vector<PathStep> steps_;
  bool absolute_ = false;
};

}  // namespace txml

#endif  // TXML_SRC_XML_PATH_H_
