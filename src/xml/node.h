#ifndef TXML_SRC_XML_NODE_H_
#define TXML_SRC_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/timestamp.h"
#include "src/xml/ids.h"

namespace txml {

/// A node of an XML tree. The data model (paper Section 4) views documents
/// as trees whose every element carries a persistent XID and a timestamp
/// (time of the last update of the element or one of its children).
///
/// Attributes are modelled as child nodes of kind kAttribute, ordered before
/// all other children; this gives them XIDs and lets the diff/index layers
/// treat them uniformly. The serializer folds them back into the start tag.
///
/// Ownership: children are owned by their parent via unique_ptr; parent
/// pointers are non-owning back-references maintained by the mutation
/// methods.
class XmlNode {
 public:
  enum class Kind {
    kElement,
    kText,
    kAttribute,
    kComment,
  };

  static std::unique_ptr<XmlNode> Element(std::string name);
  static std::unique_ptr<XmlNode> Text(std::string value);
  static std::unique_ptr<XmlNode> Attribute(std::string name,
                                            std::string value);
  static std::unique_ptr<XmlNode> Comment(std::string value);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }
  bool is_attribute() const { return kind_ == Kind::kAttribute; }

  /// Element/attribute name; empty for text and comment nodes.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text/attribute/comment content; empty for elements.
  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  Xid xid() const { return xid_; }
  void set_xid(Xid xid) { xid_ = xid; }

  /// Timestamp of the last update of this node or one of its descendants.
  Timestamp timestamp() const { return timestamp_; }
  void set_timestamp(Timestamp ts) { timestamp_ = ts; }

  XmlNode* parent() { return parent_; }
  const XmlNode* parent() const { return parent_; }

  size_t child_count() const { return children_.size(); }
  XmlNode* child(size_t i) { return children_[i].get(); }
  const XmlNode* child(size_t i) const { return children_[i].get(); }
  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// Appends a child; returns a borrowed pointer to it.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);

  /// Inserts a child at position pos (clamped to [0, child_count()]).
  XmlNode* InsertChild(size_t pos, std::unique_ptr<XmlNode> child);

  /// Detaches and returns the child at pos.
  std::unique_ptr<XmlNode> RemoveChild(size_t pos);

  /// Position of a direct child, or child_count() if not a child.
  size_t IndexOfChild(const XmlNode* child) const;

  /// First child element with the given name, or nullptr.
  XmlNode* FindChildElement(std::string_view name);
  const XmlNode* FindChildElement(std::string_view name) const;

  /// First attribute child with the given name, or nullptr.
  const XmlNode* FindAttribute(std::string_view name) const;

  /// Deep copy including XIDs and timestamps.
  std::unique_ptr<XmlNode> Clone() const;

  /// Content equality: kind, name, value and (recursively, in order) all
  /// children. Ignores XIDs and timestamps — this is the `=` deep-equality
  /// of Section 7.4, as opposed to `==` EID identity.
  bool ContentEquals(const XmlNode& other) const;

  /// Shallow content equality: kind, name, value only.
  bool ShallowEquals(const XmlNode& other) const;

  /// Concatenation of all descendant text and attribute values, in document
  /// order.
  std::string TextContent() const;

  /// Number of nodes in this subtree, including this node.
  size_t CountNodes() const;

  /// Searches the subtree for the node carrying `xid`; nullptr if absent.
  XmlNode* FindByXid(Xid xid);
  const XmlNode* FindByXid(Xid xid) const;

  /// Serialized form (compact); convenience wrapper over the serializer.
  std::string ToString() const;

 private:
  XmlNode(Kind kind, std::string name, std::string value)
      : kind_(kind), name_(std::move(name)), value_(std::move(value)) {}

  Kind kind_;
  std::string name_;
  std::string value_;
  Xid xid_ = kInvalidXid;
  Timestamp timestamp_;
  XmlNode* parent_ = nullptr;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// An XML document: a named handle on a single tree. Move-only; deep copies
/// are explicit via Clone().
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlNode> root)
      : root_(std::move(root)) {}

  XmlDocument(XmlDocument&&) = default;
  XmlDocument& operator=(XmlDocument&&) = default;
  XmlDocument(const XmlDocument&) = delete;
  XmlDocument& operator=(const XmlDocument&) = delete;

  bool empty() const { return root_ == nullptr; }
  XmlNode* root() { return root_.get(); }
  const XmlNode* root() const { return root_.get(); }

  std::unique_ptr<XmlNode> ReleaseRoot() { return std::move(root_); }
  void SetRoot(std::unique_ptr<XmlNode> root) { root_ = std::move(root); }

  XmlDocument Clone() const {
    return XmlDocument(root_ ? root_->Clone() : nullptr);
  }

  bool ContentEquals(const XmlDocument& other) const {
    if (empty() || other.empty()) return empty() == other.empty();
    return root_->ContentEquals(*other.root_);
  }

  std::string ToString() const { return root_ ? root_->ToString() : ""; }

 private:
  std::unique_ptr<XmlNode> root_;
};

}  // namespace txml

#endif  // TXML_SRC_XML_NODE_H_
