#include "src/xml/node.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/xml/serializer.h"

namespace txml {

std::unique_ptr<XmlNode> XmlNode::Element(std::string name) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(Kind::kElement, std::move(name), ""));
}

std::unique_ptr<XmlNode> XmlNode::Text(std::string value) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(Kind::kText, "", std::move(value)));
}

std::unique_ptr<XmlNode> XmlNode::Attribute(std::string name,
                                            std::string value) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(Kind::kAttribute, std::move(name), std::move(value)));
}

std::unique_ptr<XmlNode> XmlNode::Comment(std::string value) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(Kind::kComment, "", std::move(value)));
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  return InsertChild(children_.size(), std::move(child));
}

XmlNode* XmlNode::InsertChild(size_t pos, std::unique_ptr<XmlNode> child) {
  TXML_DCHECK(child != nullptr);
  TXML_DCHECK(kind_ == Kind::kElement);
  pos = std::min(pos, children_.size());
  child->parent_ = this;
  XmlNode* borrowed = child.get();
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(pos),
                   std::move(child));
  return borrowed;
}

std::unique_ptr<XmlNode> XmlNode::RemoveChild(size_t pos) {
  TXML_DCHECK(pos < children_.size());
  std::unique_ptr<XmlNode> removed = std::move(children_[pos]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(pos));
  removed->parent_ = nullptr;
  return removed;
}

size_t XmlNode::IndexOfChild(const XmlNode* child) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) return i;
  }
  return children_.size();
}

XmlNode* XmlNode::FindChildElement(std::string_view name) {
  return const_cast<XmlNode*>(
      static_cast<const XmlNode*>(this)->FindChildElement(name));
}

const XmlNode* XmlNode::FindChildElement(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) return child.get();
  }
  return nullptr;
}

const XmlNode* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->is_attribute() && child->name() == name) return child.get();
  }
  return nullptr;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  std::unique_ptr<XmlNode> copy(new XmlNode(kind_, name_, value_));
  copy->xid_ = xid_;
  copy->timestamp_ = timestamp_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->AddChild(child->Clone());
  }
  return copy;
}

bool XmlNode::ShallowEquals(const XmlNode& other) const {
  return kind_ == other.kind_ && name_ == other.name_ &&
         value_ == other.value_;
}

bool XmlNode::ContentEquals(const XmlNode& other) const {
  if (!ShallowEquals(other)) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->ContentEquals(*other.children_[i])) return false;
  }
  return true;
}

std::string XmlNode::TextContent() const {
  std::string result;
  if (is_text() || is_attribute()) {
    result += value_;
  }
  for (const auto& child : children_) {
    result += child->TextContent();
  }
  return result;
}

size_t XmlNode::CountNodes() const {
  size_t count = 1;
  for (const auto& child : children_) {
    count += child->CountNodes();
  }
  return count;
}

XmlNode* XmlNode::FindByXid(Xid xid) {
  return const_cast<XmlNode*>(
      static_cast<const XmlNode*>(this)->FindByXid(xid));
}

const XmlNode* XmlNode::FindByXid(Xid xid) const {
  if (xid_ == xid) return this;
  for (const auto& child : children_) {
    if (const XmlNode* found = child->FindByXid(xid)) return found;
  }
  return nullptr;
}

std::string XmlNode::ToString() const { return SerializeXml(*this); }

}  // namespace txml
