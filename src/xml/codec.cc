#include "src/xml/codec.h"

#include <utility>

namespace txml {

void EncodeNode(const XmlNode& node, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(node.kind()));
  PutVarint32(dst, node.xid());
  PutVarintSigned64(dst, node.timestamp().micros());
  PutLengthPrefixed(dst, node.name());
  PutLengthPrefixed(dst, node.value());
  PutVarint64(dst, node.child_count());
  for (const auto& child : node.children()) {
    EncodeNode(*child, dst);
  }
}

StatusOr<std::unique_ptr<XmlNode>> DecodeNode(Decoder* decoder) {
  auto kind_raw = decoder->ReadVarint32();
  if (!kind_raw.ok()) return kind_raw.status();
  if (*kind_raw > static_cast<uint32_t>(XmlNode::Kind::kComment)) {
    return Status::Corruption("bad node kind " + std::to_string(*kind_raw));
  }
  auto kind = static_cast<XmlNode::Kind>(*kind_raw);
  auto xid = decoder->ReadVarint32();
  if (!xid.ok()) return xid.status();
  auto ts = decoder->ReadVarintSigned64();
  if (!ts.ok()) return ts.status();
  auto name = decoder->ReadLengthPrefixed();
  if (!name.ok()) return name.status();
  auto value = decoder->ReadLengthPrefixed();
  if (!value.ok()) return value.status();
  auto child_count = decoder->ReadVarint64();
  if (!child_count.ok()) return child_count.status();

  std::unique_ptr<XmlNode> node;
  switch (kind) {
    case XmlNode::Kind::kElement:
      node = XmlNode::Element(std::string(*name));
      break;
    case XmlNode::Kind::kText:
      node = XmlNode::Text(std::string(*value));
      break;
    case XmlNode::Kind::kAttribute:
      node = XmlNode::Attribute(std::string(*name), std::string(*value));
      break;
    case XmlNode::Kind::kComment:
      node = XmlNode::Comment(std::string(*value));
      break;
  }
  node->set_xid(*xid);
  node->set_timestamp(Timestamp::FromMicros(*ts));
  if (*child_count > decoder->remaining()) {
    // Each child needs at least one byte; cheap sanity bound against
    // corrupt counts causing huge loops.
    return Status::Corruption("implausible child count");
  }
  for (uint64_t i = 0; i < *child_count; ++i) {
    auto child = DecodeNode(decoder);
    if (!child.ok()) return child.status();
    node->AddChild(std::move(*child));
  }
  return node;
}

std::string EncodeNodeToString(const XmlNode& node) {
  std::string out;
  EncodeNode(node, &out);
  return out;
}

StatusOr<std::unique_ptr<XmlNode>> DecodeNodeFromString(
    std::string_view data) {
  Decoder decoder(data);
  auto node = DecodeNode(&decoder);
  if (!node.ok()) return node.status();
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after encoded node");
  }
  return node;
}

}  // namespace txml
