#ifndef TXML_SRC_XML_PATTERN_H_
#define TXML_SRC_XML_PATTERN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/statusor.h"
#include "src/xml/node.h"
#include "src/xml/path.h"

namespace txml {

/// The pattern-tree input of the PatternScan family of operators, after
/// Aguilera et al.'s Xyleme pattern trees (paper Section 6): each node
/// carries a word test plus the structural relationship (isParentOf /
/// isAscendantOf) to its parent pattern node, and projection information.
///
/// Two kinds of test:
///  * kElementName — matches an element whose tag name equals the term;
///  * kWord        — matches an element that *directly contains* the term
///                   as a word of its text or attribute values. This is how
///                   value constants like "Napoli" enter a pattern: the FTI
///                   indexes words and element names in one vocabulary, and
///                   equality testing is finished after the scan
///                   (Section 6.1's remark on containment vs. equality).
struct PatternNode {
  enum class Test { kElementName, kWord };

  /// Relationship between this node's match and the parent pattern node's
  /// match.
  enum class Axis {
    kSelf,              // same element (word contained directly in parent)
    kChild,             // parent isParentOf this
    kDescendant,        // parent isAscendantOf this (strict)
    kDescendantOrSelf,  // parent is this, or isAscendantOf this
  };

  Test test = Test::kElementName;
  Axis axis = Axis::kChild;
  /// Lower-cased term (element name or word).
  std::string term;
  /// If true, this node's matched element is part of the scan output.
  bool projected = false;
  /// Pre-order id, assigned by Pattern::Finalize().
  int id = -1;

  std::vector<std::unique_ptr<PatternNode>> children;

  PatternNode* AddChild(std::unique_ptr<PatternNode> child) {
    children.push_back(std::move(child));
    return children.back().get();
  }

  static std::unique_ptr<PatternNode> Make(Test test, Axis axis,
                                           std::string_view term,
                                           bool projected = false);
};

/// A whole pattern: one root PatternNode (its axis is interpreted relative
/// to the document node, so kDescendantOrSelf means "anywhere in the
/// document", which is how FROM-clause variables bind).
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::unique_ptr<PatternNode> root) : root_(std::move(root)) {
    Finalize();
  }

  Pattern(Pattern&&) = default;
  Pattern& operator=(Pattern&&) = default;

  /// Builds a linear pattern from a path expression: one kElementName node
  /// per step. `projected` marks the last step's node as the output.
  static StatusOr<Pattern> FromPath(const PathExpr& path,
                                    bool project_last = true);

  const PatternNode* root() const { return root_.get(); }
  PatternNode* mutable_root() { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

  /// Number of pattern nodes; ids are 0..size()-1 in pre-order.
  int size() const { return size_; }

  /// All nodes in pre-order (id order).
  std::vector<const PatternNode*> NodesPreorder() const;

  /// Id of the first projected node (the scan output), or -1.
  int ProjectedId() const;

  /// Re-assigns pre-order ids; call after structural edits.
  void Finalize();

  /// Deep copy.
  Pattern Clone() const;

  /// Debug rendering, e.g. "restaurant[name[.~'napoli'], price*]".
  std::string ToString() const;

 private:
  std::unique_ptr<PatternNode> root_;
  int size_ = 0;
};

/// One embedding of a pattern into a tree: matched element per pattern node,
/// indexed by pattern-node id.
using PatternMatch = std::vector<const XmlNode*>;

/// Evaluates a pattern directly against a tree (no index). This is both the
/// fallback scan used by the stratum baseline and the test oracle for the
/// FTI-based join algorithms. Returns every embedding.
std::vector<PatternMatch> MatchPattern(const XmlNode& root,
                                       const Pattern& pattern);

/// True if `element` directly contains `word` (lower-cased token of its
/// immediate text children or attribute values). Mirrors the FTI's posting
/// attachment rule.
bool ElementDirectlyContainsWord(const XmlNode& element,
                                 std::string_view word);

}  // namespace txml

#endif  // TXML_SRC_XML_PATTERN_H_
