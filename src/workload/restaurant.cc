#include "src/workload/restaurant.h"

namespace txml {

std::vector<Figure1Version> Figure1History() {
  return {
      {Timestamp::FromDate(2001, 1, 1),
       "<guide>"
       "<restaurant><name>Napoli</name><price>15</price></restaurant>"
       "</guide>"},
      {Timestamp::FromDate(2001, 1, 15),
       "<guide>"
       "<restaurant><name>Napoli</name><price>15</price></restaurant>"
       "<restaurant><name>Akropolis</name><price>13</price></restaurant>"
       "</guide>"},
      {Timestamp::FromDate(2001, 1, 31),
       "<guide>"
       "<restaurant><name>Napoli</name><price>18</price></restaurant>"
       "</guide>"},
  };
}

namespace {

const char* const kNameParts[] = {"Napoli",  "Akropolis", "Vesuvio",
                                  "Bergen",  "Paris",     "Roma",
                                  "Dragon",  "Sirocco",   "Fjord",
                                  "Olympia", "Trident",   "Aurora"};
const char* const kCities[] = {"Trondheim", "Paris", "Roma", "Athens"};

}  // namespace

RestaurantWorkload::RestaurantWorkload(Options options)
    : options_(options), rng_(options.seed) {
  entries_.reserve(options_.restaurants);
  for (size_t i = 0; i < options_.restaurants; ++i) {
    entries_.push_back(Entry{FreshName(),
                             static_cast<int>(5 + rng_.Uniform(95)),
                             kCities[rng_.Uniform(4)]});
  }
}

std::string RestaurantWorkload::FreshName() {
  std::string name = kNameParts[next_name_ % 12];
  uint64_t serial = next_name_++ / 12;
  if (serial > 0) name += " " + std::to_string(serial);
  return name;
}

std::unique_ptr<XmlNode> RestaurantWorkload::CurrentVersion() const {
  auto guide = XmlNode::Element("guide");
  for (const Entry& entry : entries_) {
    XmlNode* restaurant = guide->AddChild(XmlNode::Element("restaurant"));
    restaurant->AddChild(XmlNode::Element("name"))
        ->AddChild(XmlNode::Text(entry.name));
    restaurant->AddChild(XmlNode::Element("price"))
        ->AddChild(XmlNode::Text(std::to_string(entry.price)));
    restaurant->AddChild(XmlNode::Element("city"))
        ->AddChild(XmlNode::Text(entry.city));
  }
  return guide;
}

void RestaurantWorkload::Step() {
  for (Entry& entry : entries_) {
    if (rng_.NextDouble() < options_.price_change_prob) {
      int delta = static_cast<int>(rng_.Uniform(7)) - 3;
      entry.price = std::max(1, entry.price + (delta == 0 ? 1 : delta));
    }
  }
  // Churn: closings and openings.
  if (!entries_.empty() && rng_.NextDouble() < options_.churn) {
    entries_.erase(entries_.begin() +
                   static_cast<ptrdiff_t>(rng_.Uniform(entries_.size())));
  }
  if (rng_.NextDouble() < options_.churn) {
    entries_.push_back(Entry{FreshName(),
                             static_cast<int>(5 + rng_.Uniform(95)),
                             kCities[rng_.Uniform(4)]});
  }
}

}  // namespace txml
