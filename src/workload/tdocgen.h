#ifndef TXML_SRC_WORKLOAD_TDOCGEN_H_
#define TXML_SRC_WORKLOAD_TDOCGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/xml/node.h"

namespace txml {

/// Configuration of the temporal document generator.
struct TDocGenOptions {
  /// Items (record elements) in the initial version of a document.
  size_t initial_items = 50;
  /// Distinct words in the synthetic vocabulary.
  size_t vocabulary = 500;
  /// Zipf skew of word selection (0 = uniform).
  double zipf_theta = 0.8;
  /// Words per generated text node.
  size_t words_per_text = 4;
  /// Mutations applied per version transition (the change volume knob —
  /// the change ratio is roughly mutations / items).
  size_t mutations_per_version = 4;
  /// Mutation mix; must sum to <= 1, the remainder are subtree moves.
  double update_ratio = 0.6;
  double insert_ratio = 0.2;
  double delete_ratio = 0.15;
  uint64_t seed = 42;
};

/// Synthesises document histories for tests and benchmarks, in the spirit
/// of TDocGen (the author's follow-up generator for temporal document
/// workloads): an initial document of `initial_items` record elements,
/// then versions derived by randomized updates / inserts / deletes /
/// moves with Zipf-skewed vocabulary — the knobs the paper's algorithms
/// are sensitive to (document size, change volume, vocabulary skew).
///
/// Documents look like
///   <collection>
///     <item key="k17"><name>w1 w2</name><info>w3 w4 w5</info>
///          <price>42</price></item>
///     …
///   </collection>
///
/// Trees are returned XID-free: the storage layer assigns identity, so
/// generated histories exercise the matcher exactly like parsed input.
class TDocGen {
 public:
  explicit TDocGen(TDocGenOptions options);

  /// A fresh initial version.
  std::unique_ptr<XmlNode> InitialDocument();

  /// The next version derived from `current` (which may carry XIDs; the
  /// returned tree never does).
  std::unique_ptr<XmlNode> NextVersion(const XmlNode& current);

  /// A Zipf-distributed vocabulary word.
  const std::string& RandomWord();

  Random* rng() { return &rng_; }

 private:
  std::unique_ptr<XmlNode> MakeItem();
  std::string MakeText();
  void StripXids(XmlNode* node);

  TDocGenOptions options_;
  Random rng_;
  ZipfSampler zipf_;
  std::vector<std::string> vocabulary_;
  uint64_t next_key_ = 1;
};

}  // namespace txml

#endif  // TXML_SRC_WORKLOAD_TDOCGEN_H_
