#ifndef TXML_SRC_WORKLOAD_RESTAURANT_H_
#define TXML_SRC_WORKLOAD_RESTAURANT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/util/timestamp.h"
#include "src/xml/node.h"

namespace txml {

/// The paper's running example (Figure 1): the restaurant list at
/// guide.com as retrieved on January 1st, 15th and 31st, 2001:
///
///   01/01: Napoli 15
///   15/01: Napoli 15, Akropolis 13
///   31/01: Napoli 18
struct Figure1Version {
  Timestamp ts;
  std::string xml;
};
std::vector<Figure1Version> Figure1History();

/// The canonical URL used by examples and tests for the Figure-1 data.
inline const char kGuideUrl[] = "http://guide.com/restaurants.xml";

/// A scaled-up restaurant-guide workload for benchmarks: `restaurants`
/// entries whose prices drift, entries opening and closing over time —
/// Figure 1 writ large, with deterministic seeds.
class RestaurantWorkload {
 public:
  struct Options {
    size_t restaurants = 100;
    /// Per-version probability that a given restaurant's price changes.
    double price_change_prob = 0.05;
    /// Per-version expected number of openings / closings.
    double churn = 0.5;
    uint64_t seed = 7;
  };

  explicit RestaurantWorkload(Options options);

  /// Renders the current state as a <guide> document.
  std::unique_ptr<XmlNode> CurrentVersion() const;

  /// Advances the simulated city by one step (prices drift, restaurants
  /// open/close).
  void Step();

  size_t restaurant_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    int price;
    std::string city;
  };

  std::string FreshName();

  Options options_;
  Random rng_;
  std::vector<Entry> entries_;
  uint64_t next_name_ = 0;
};

}  // namespace txml

#endif  // TXML_SRC_WORKLOAD_RESTAURANT_H_
