#include "src/workload/tdocgen.h"

#include <utility>

#include "src/util/logging.h"

namespace txml {
namespace {

const char* const kFieldNames[] = {"name", "info", "price", "status",
                                   "note"};
constexpr size_t kFieldNameCount = 5;

}  // namespace

TDocGen::TDocGen(TDocGenOptions options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.vocabulary, options.zipf_theta) {
  vocabulary_.reserve(options_.vocabulary);
  for (size_t i = 0; i < options_.vocabulary; ++i) {
    // Deterministic pronounceable-ish words: w<i> with letter suffix mix.
    std::string word = "w";
    uint64_t n = i;
    do {
      word.push_back(static_cast<char>('a' + n % 26));
      n /= 26;
    } while (n > 0);
    word += std::to_string(i);
    vocabulary_.push_back(std::move(word));
  }
}

const std::string& TDocGen::RandomWord() {
  return vocabulary_[zipf_.Sample(&rng_)];
}

std::string TDocGen::MakeText() {
  std::string text;
  for (size_t i = 0; i < options_.words_per_text; ++i) {
    if (i > 0) text += " ";
    text += RandomWord();
  }
  return text;
}

std::unique_ptr<XmlNode> TDocGen::MakeItem() {
  auto item = XmlNode::Element("item");
  item->AddChild(
      XmlNode::Attribute("key", "k" + std::to_string(next_key_++)));
  size_t fields = 2 + rng_.Uniform(3);
  for (size_t f = 0; f < fields && f < kFieldNameCount; ++f) {
    XmlNode* field = item->AddChild(XmlNode::Element(kFieldNames[f]));
    if (std::string(kFieldNames[f]) == "price") {
      field->AddChild(XmlNode::Text(std::to_string(5 + rng_.Uniform(95))));
    } else {
      field->AddChild(XmlNode::Text(MakeText()));
    }
  }
  return item;
}

std::unique_ptr<XmlNode> TDocGen::InitialDocument() {
  auto root = XmlNode::Element("collection");
  for (size_t i = 0; i < options_.initial_items; ++i) {
    root->AddChild(MakeItem());
  }
  return root;
}

void TDocGen::StripXids(XmlNode* node) {
  node->set_xid(kInvalidXid);
  for (size_t i = 0; i < node->child_count(); ++i) {
    StripXids(node->child(i));
  }
}

std::unique_ptr<XmlNode> TDocGen::NextVersion(const XmlNode& current) {
  std::unique_ptr<XmlNode> next = current.Clone();
  StripXids(next.get());

  for (size_t m = 0; m < options_.mutations_per_version; ++m) {
    // Re-collect items each round (inserts/deletes change the set).
    std::vector<XmlNode*> items;
    for (size_t i = 0; i < next->child_count(); ++i) {
      if (next->child(i)->is_element()) items.push_back(next->child(i));
    }
    double roll = rng_.NextDouble();
    if (roll < options_.update_ratio && !items.empty()) {
      // Update one field's text of a random item.
      XmlNode* item = items[rng_.Uniform(items.size())];
      std::vector<XmlNode*> leaves;
      for (size_t i = 0; i < item->child_count(); ++i) {
        XmlNode* field = item->child(i);
        if (field->is_element() && field->child_count() == 1 &&
            field->child(0)->is_text()) {
          leaves.push_back(field->child(0));
        }
      }
      if (!leaves.empty()) {
        leaves[rng_.Uniform(leaves.size())]->set_value(MakeText());
      }
    } else if (roll < options_.update_ratio + options_.insert_ratio) {
      next->InsertChild(rng_.Uniform(next->child_count() + 1), MakeItem());
    } else if (roll < options_.update_ratio + options_.insert_ratio +
                          options_.delete_ratio) {
      if (items.size() > 1) {
        XmlNode* victim = items[rng_.Uniform(items.size())];
        next->RemoveChild(next->IndexOfChild(victim));
      }
    } else if (items.size() > 1) {
      // Move an item to a different position (sibling reorder).
      XmlNode* victim = items[rng_.Uniform(items.size())];
      auto detached = next->RemoveChild(next->IndexOfChild(victim));
      next->InsertChild(rng_.Uniform(next->child_count() + 1),
                        std::move(detached));
    }
  }
  return next;
}

}  // namespace txml
