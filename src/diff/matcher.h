#ifndef TXML_SRC_DIFF_MATCHER_H_
#define TXML_SRC_DIFF_MATCHER_H_

#include <cstdint>
#include <unordered_map>

#include "src/xml/node.h"

namespace txml {

/// A correspondence between the nodes of an old and a new version of a
/// tree, as computed by MatchTrees. Matched pairs are nodes considered "the
/// same node" across the update — the basis for XID propagation and for
/// minimal edit scripts.
class NodeMatching {
 public:
  void AddPair(const XmlNode* old_node, const XmlNode* new_node) {
    old_to_new_[old_node] = new_node;
    new_to_old_[new_node] = old_node;
  }

  const XmlNode* NewFor(const XmlNode* old_node) const {
    auto it = old_to_new_.find(old_node);
    return it == old_to_new_.end() ? nullptr : it->second;
  }

  const XmlNode* OldFor(const XmlNode* new_node) const {
    auto it = new_to_old_.find(new_node);
    return it == new_to_old_.end() ? nullptr : it->second;
  }

  bool OldMatched(const XmlNode* old_node) const {
    return old_to_new_.contains(old_node);
  }
  bool NewMatched(const XmlNode* new_node) const {
    return new_to_old_.contains(new_node);
  }

  size_t size() const { return old_to_new_.size(); }

 private:
  std::unordered_map<const XmlNode*, const XmlNode*> old_to_new_;
  std::unordered_map<const XmlNode*, const XmlNode*> new_to_old_;
};

/// Computes a matching between two versions of a tree, in the style of
/// XyDiff (Cobéna/Abiteboul/Marian — the paper's reference [7]):
///
///  1. Bottom-up content hashing of every subtree, with a weight
///     (subtree size + text length).
///  2. Greedy matching of identical subtrees, heaviest first, preferring
///     candidates whose parents are already matched (keeps moves local).
///     Matching a subtree pair matches all descendants pairwise.
///  3. Upward propagation: parents of matched pairs with equal kind and
///     name are matched.
///  4. Downward completion: for each matched element pair, remaining
///     unmatched children are paired by kind+name in document order, which
///     turns small text edits into cheap update operations instead of
///     delete+insert.
///
/// Roots are force-matched (two versions of one document are always "the
/// same document"); a root rename surfaces as a rename edit.
NodeMatching MatchTrees(const XmlNode& old_root, const XmlNode& new_root);

/// 64-bit content hash of a subtree (kind, name, value, ordered children).
/// Exposed for tests and for snapshot integrity checks.
uint64_t SubtreeHash(const XmlNode& node);

}  // namespace txml

#endif  // TXML_SRC_DIFF_MATCHER_H_
