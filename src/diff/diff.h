#ifndef TXML_SRC_DIFF_DIFF_H_
#define TXML_SRC_DIFF_DIFF_H_

#include "src/diff/edit_script.h"
#include "src/diff/matcher.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// Output of DiffTrees.
struct DiffResult {
  /// Completed delta transforming the old version into the new one when
  /// applied forward (and back when applied backward).
  EditScript script;
  /// The node correspondence the script was derived from; pointers refer
  /// into the two input trees.
  NodeMatching matching;
  size_t old_node_count = 0;
  size_t new_node_count = 0;
};

/// Diffs two versions of a document and assigns persistent XIDs to the new
/// version:
///
///  * every node of `old_root` must already carry a valid XID;
///  * on return every node of `*new_root` carries its final XID — matched
///    nodes inherit the old node's XID (identity persists across versions,
///    Section 3.2), unmatched nodes receive fresh XIDs from `alloc` (never
///    reused);
///  * the returned script, applied forward to a copy of the old tree,
///    reproduces the new tree (verified internally in debug builds).
///
/// The script generation simulates application on a working copy, so every
/// operation's positions are valid in the tree state at its turn — the
/// property both ApplyForward and ApplyBackward rely on.
///
/// `commit_ts` is the transaction time of the new version: timestamps are
/// propagated (see PropagateTimestamps) before the script is generated, so
/// subtrees carried in the delta hold correct stamps.
StatusOr<DiffResult> DiffTrees(const XmlNode& old_root, XmlNode* new_root,
                               XidAllocator* alloc, Timestamp commit_ts);

/// Implements the data model's timestamp rule (Section 4): an element's
/// timestamp is the time of the last update of the element or one of its
/// children, propagating up to the root. Nodes whose subtree is unchanged
/// from their matched counterpart keep the old timestamp; every other node
/// gets `commit_ts`. Must run after DiffTrees (XIDs assigned).
void PropagateTimestamps(const XmlNode& old_root, XmlNode* new_root,
                         const NodeMatching& matching, Timestamp commit_ts);

/// Stamps every node of a first version with `commit_ts`.
void StampAll(XmlNode* root, Timestamp commit_ts);

/// Assigns fresh XIDs to every node of a first version.
void AssignFreshXids(XmlNode* root, XidAllocator* alloc);

}  // namespace txml

#endif  // TXML_SRC_DIFF_DIFF_H_
