#include "src/diff/edit_script.h"

#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/macros.h"
#include "src/xml/codec.h"

namespace txml {
namespace {

/// XID → node index over a live tree, maintained across script application
/// so each operation resolves its targets in O(1).
class XidIndex {
 public:
  explicit XidIndex(XmlNode* root) { Add(root); }

  XmlNode* Find(Xid xid) const {
    auto it = map_.find(xid);
    return it == map_.end() ? nullptr : it->second;
  }

  void Add(XmlNode* node) {
    if (node->xid() != kInvalidXid) map_[node->xid()] = node;
    for (size_t i = 0; i < node->child_count(); ++i) Add(node->child(i));
  }

  void Remove(const XmlNode* node) {
    if (node->xid() != kInvalidXid) map_.erase(node->xid());
    for (size_t i = 0; i < node->child_count(); ++i) Remove(node->child(i));
  }

 private:
  std::unordered_map<Xid, XmlNode*> map_;
};

Status MissingXid(Xid xid) {
  return Status::Corruption("delta refers to unknown xid " +
                            std::to_string(xid));
}

Status ApplyInsert(const EditOp& op, XidIndex* index) {
  XmlNode* parent = index->Find(op.parent);
  if (parent == nullptr) return MissingXid(op.parent);
  if (op.pos > parent->child_count()) {
    return Status::Corruption("insert position out of range");
  }
  if (op.subtree == nullptr) {
    return Status::Corruption("insert op without subtree");
  }
  XmlNode* inserted = parent->InsertChild(op.pos, op.subtree->Clone());
  index->Add(inserted);
  return Status::OK();
}

Status ApplyDelete(const EditOp& op, XidIndex* index) {
  XmlNode* parent = index->Find(op.parent);
  if (parent == nullptr) return MissingXid(op.parent);
  if (op.pos >= parent->child_count()) {
    return Status::Corruption("delete position out of range");
  }
  const XmlNode* victim = parent->child(op.pos);
  if (op.subtree != nullptr && victim->xid() != op.subtree->xid()) {
    return Status::Corruption("delete position does not hold expected node");
  }
  index->Remove(victim);
  parent->RemoveChild(op.pos);
  return Status::OK();
}

Status ApplyMove(XidIndex* index, Xid target, Xid from_parent,
                 uint32_t from_pos, Xid to_parent, uint32_t to_pos) {
  XmlNode* node = index->Find(target);
  if (node == nullptr) return MissingXid(target);
  XmlNode* source = index->Find(from_parent);
  XmlNode* dest = index->Find(to_parent);
  if (source == nullptr) return MissingXid(from_parent);
  if (dest == nullptr) return MissingXid(to_parent);
  if (node->parent() != source || from_pos >= source->child_count() ||
      source->child(from_pos) != node) {
    return Status::Corruption("move source does not hold expected node");
  }
  for (const XmlNode* p = dest; p != nullptr; p = p->parent()) {
    if (p == node) {
      return Status::Corruption("move destination inside moved subtree");
    }
  }
  std::unique_ptr<XmlNode> detached = source->RemoveChild(from_pos);
  if (to_pos > dest->child_count()) {
    return Status::Corruption("move destination position out of range");
  }
  dest->InsertChild(to_pos, std::move(detached));
  return Status::OK();
}

}  // namespace

EditOp EditOp::Clone() const {
  EditOp copy;
  copy.kind = kind;
  copy.parent = parent;
  copy.pos = pos;
  if (subtree != nullptr) copy.subtree = subtree->Clone();
  copy.target = target;
  copy.old_value = old_value;
  copy.new_value = new_value;
  copy.from_parent = from_parent;
  copy.from_pos = from_pos;
  copy.to_parent = to_parent;
  copy.to_pos = to_pos;
  return copy;
}

Status EditScript::ApplyForward(XmlNode* root) const {
  XidIndex index(root);
  for (const EditOp& op : ops_) {
    switch (op.kind) {
      case EditOp::Kind::kInsert:
        TXML_RETURN_IF_ERROR(ApplyInsert(op, &index));
        break;
      case EditOp::Kind::kDelete:
        TXML_RETURN_IF_ERROR(ApplyDelete(op, &index));
        break;
      case EditOp::Kind::kUpdate: {
        XmlNode* node = index.Find(op.target);
        if (node == nullptr) return MissingXid(op.target);
        if (node->value() != op.old_value) {
          return Status::Corruption("update: unexpected current value");
        }
        node->set_value(op.new_value);
        break;
      }
      case EditOp::Kind::kMove:
        TXML_RETURN_IF_ERROR(ApplyMove(&index, op.target, op.from_parent,
                                       op.from_pos, op.to_parent, op.to_pos));
        break;
      case EditOp::Kind::kRename: {
        XmlNode* node = index.Find(op.target);
        if (node == nullptr) return MissingXid(op.target);
        if (node->name() != op.old_value) {
          return Status::Corruption("rename: unexpected current name");
        }
        node->set_name(op.new_value);
        break;
      }
    }
  }
  if (merged_) {
    // Merged scripts carry explicit target stamps: a node restamped by an
    // intermediate (vacuumed-away) transition keeps that transition's
    // timestamp, not the merge's commit_ts.
    for (const auto& [xid, new_ts] : forward_stamps_) {
      XmlNode* node = index.Find(xid);
      if (node == nullptr) return MissingXid(xid);
      node->set_timestamp(new_ts);
    }
    return Status::OK();
  }
  for (const auto& [xid, old_ts] : restamps_) {
    (void)old_ts;
    XmlNode* node = index.Find(xid);
    if (node == nullptr) return MissingXid(xid);
    node->set_timestamp(commit_ts_);
  }
  return Status::OK();
}

Status EditScript::ApplyBackward(XmlNode* root) const {
  XidIndex index(root);
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    const EditOp& op = *it;
    switch (op.kind) {
      case EditOp::Kind::kInsert: {
        // Inverse of insert is delete at the same location.
        XmlNode* parent = index.Find(op.parent);
        if (parent == nullptr) return MissingXid(op.parent);
        if (op.pos >= parent->child_count() ||
            (op.subtree != nullptr &&
             parent->child(op.pos)->xid() != op.subtree->xid())) {
          return Status::Corruption("undo-insert: node not where expected");
        }
        index.Remove(parent->child(op.pos));
        parent->RemoveChild(op.pos);
        break;
      }
      case EditOp::Kind::kDelete: {
        // Inverse of delete is insert of the stored subtree.
        XmlNode* parent = index.Find(op.parent);
        if (parent == nullptr) return MissingXid(op.parent);
        if (op.subtree == nullptr) {
          return Status::Corruption("undo-delete: delta not completed");
        }
        if (op.pos > parent->child_count()) {
          return Status::Corruption("undo-delete: position out of range");
        }
        XmlNode* inserted = parent->InsertChild(op.pos, op.subtree->Clone());
        index.Add(inserted);
        break;
      }
      case EditOp::Kind::kUpdate: {
        XmlNode* node = index.Find(op.target);
        if (node == nullptr) return MissingXid(op.target);
        if (node->value() != op.new_value) {
          return Status::Corruption("undo-update: unexpected current value");
        }
        node->set_value(op.old_value);
        break;
      }
      case EditOp::Kind::kMove:
        TXML_RETURN_IF_ERROR(ApplyMove(&index, op.target, op.to_parent,
                                       op.to_pos, op.from_parent,
                                       op.from_pos));
        break;
      case EditOp::Kind::kRename: {
        XmlNode* node = index.Find(op.target);
        if (node == nullptr) return MissingXid(op.target);
        if (node->name() != op.new_value) {
          return Status::Corruption("undo-rename: unexpected current name");
        }
        node->set_name(op.old_value);
        break;
      }
    }
  }
  for (const auto& [xid, old_ts] : restamps_) {
    XmlNode* node = index.Find(xid);
    if (node == nullptr) return MissingXid(xid);
    node->set_timestamp(old_ts);
  }
  return Status::OK();
}

EditScript EditScript::Clone() const {
  EditScript copy;
  copy.ops_.reserve(ops_.size());
  for (const EditOp& op : ops_) copy.ops_.push_back(op.Clone());
  copy.commit_ts_ = commit_ts_;
  copy.restamps_ = restamps_;
  copy.merged_ = merged_;
  copy.forward_stamps_ = forward_stamps_;
  return copy;
}

size_t EditScript::PayloadNodeCount() const {
  size_t count = 0;
  for (const EditOp& op : ops_) {
    if (op.subtree != nullptr) count += op.subtree->CountNodes();
  }
  return count;
}

namespace {

void AddIntAttr(XmlNode* element, const char* name, uint64_t value) {
  element->AddChild(XmlNode::Attribute(name, std::to_string(value)));
}

StatusOr<uint64_t> GetIntAttr(const XmlNode& element, const char* name) {
  const XmlNode* attr = element.FindAttribute(name);
  if (attr == nullptr) {
    return Status::Corruption(std::string("delta op missing attribute '") +
                              name + "'");
  }
  uint64_t value = 0;
  for (char c : attr->value()) {
    if (c < '0' || c > '9') {
      return Status::Corruption(std::string("bad numeric attribute '") +
                                name + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

std::string GetStrAttr(const XmlNode& element, const char* name) {
  const XmlNode* attr = element.FindAttribute(name);
  return attr == nullptr ? "" : attr->value();
}

}  // namespace

XmlDocument EditScript::ToXml() const {
  auto delta = XmlNode::Element("delta");
  delta->AddChild(XmlNode::Attribute("commit-ts",
                                     std::to_string(commit_ts_.micros())));
  for (const EditOp& op : ops_) {
    std::unique_ptr<XmlNode> el;
    switch (op.kind) {
      case EditOp::Kind::kInsert:
      case EditOp::Kind::kDelete: {
        el = XmlNode::Element(
            op.kind == EditOp::Kind::kInsert ? "insert" : "delete");
        AddIntAttr(el.get(), "parent", op.parent);
        AddIntAttr(el.get(), "pos", op.pos);
        // The payload is wrapped in <content> so attribute payloads do not
        // mix with the operation's own parameters.
        auto content = XmlNode::Element("content");
        if (op.subtree != nullptr) content->AddChild(op.subtree->Clone());
        el->AddChild(std::move(content));
        break;
      }
      case EditOp::Kind::kUpdate:
        el = XmlNode::Element("update");
        AddIntAttr(el.get(), "xid", op.target);
        el->AddChild(XmlNode::Attribute("old", op.old_value));
        el->AddChild(XmlNode::Attribute("new", op.new_value));
        break;
      case EditOp::Kind::kMove:
        el = XmlNode::Element("move");
        AddIntAttr(el.get(), "xid", op.target);
        AddIntAttr(el.get(), "from-parent", op.from_parent);
        AddIntAttr(el.get(), "from-pos", op.from_pos);
        AddIntAttr(el.get(), "to-parent", op.to_parent);
        AddIntAttr(el.get(), "to-pos", op.to_pos);
        break;
      case EditOp::Kind::kRename:
        el = XmlNode::Element("rename");
        AddIntAttr(el.get(), "xid", op.target);
        el->AddChild(XmlNode::Attribute("old", op.old_value));
        el->AddChild(XmlNode::Attribute("new", op.new_value));
        break;
    }
    delta->AddChild(std::move(el));
  }
  for (const auto& [xid, old_ts] : restamps_) {
    auto el = XmlNode::Element("stamp");
    AddIntAttr(el.get(), "xid", xid);
    el->AddChild(XmlNode::Attribute("old-ts",
                                    std::to_string(old_ts.micros())));
    delta->AddChild(std::move(el));
  }
  if (merged_) {
    delta->AddChild(XmlNode::Attribute("merged", "1"));
    for (const auto& [xid, new_ts] : forward_stamps_) {
      auto el = XmlNode::Element("fstamp");
      AddIntAttr(el.get(), "xid", xid);
      el->AddChild(XmlNode::Attribute("new-ts",
                                      std::to_string(new_ts.micros())));
      delta->AddChild(std::move(el));
    }
  }
  return XmlDocument(std::move(delta));
}

StatusOr<EditScript> EditScript::FromXml(const XmlNode& delta_root) {
  if (!delta_root.is_element() || delta_root.name() != "delta") {
    return Status::Corruption("not a <delta> document");
  }
  EditScript script;
  {
    const XmlNode* ts_attr = delta_root.FindAttribute("commit-ts");
    if (ts_attr != nullptr) {
      script.set_commit_ts(
          Timestamp::FromMicros(std::strtoll(ts_attr->value().c_str(),
                                             nullptr, 10)));
    }
  }
  bool merged = false;
  std::vector<std::pair<Xid, Timestamp>> forward_stamps;
  {
    const XmlNode* merged_attr = delta_root.FindAttribute("merged");
    merged = merged_attr != nullptr && merged_attr->value() == "1";
  }
  for (const auto& child : delta_root.children()) {
    if (!child->is_element()) continue;
    EditOp op;
    const std::string& tag = child->name();
    if (tag == "fstamp") {
      auto xid = GetIntAttr(*child, "xid");
      if (!xid.ok()) return xid.status();
      const XmlNode* new_ts = child->FindAttribute("new-ts");
      if (new_ts == nullptr) {
        return Status::Corruption("<fstamp> missing new-ts");
      }
      forward_stamps.emplace_back(
          static_cast<Xid>(*xid),
          Timestamp::FromMicros(
              std::strtoll(new_ts->value().c_str(), nullptr, 10)));
      continue;
    }
    if (tag == "stamp") {
      auto xid = GetIntAttr(*child, "xid");
      if (!xid.ok()) return xid.status();
      const XmlNode* old_ts = child->FindAttribute("old-ts");
      if (old_ts == nullptr) {
        return Status::Corruption("<stamp> missing old-ts");
      }
      script.AddRestamp(
          static_cast<Xid>(*xid),
          Timestamp::FromMicros(
              std::strtoll(old_ts->value().c_str(), nullptr, 10)));
      continue;
    }
    if (tag == "insert" || tag == "delete") {
      op.kind =
          tag == "insert" ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
      auto parent = GetIntAttr(*child, "parent");
      if (!parent.ok()) return parent.status();
      auto pos = GetIntAttr(*child, "pos");
      if (!pos.ok()) return pos.status();
      op.parent = static_cast<Xid>(*parent);
      op.pos = static_cast<uint32_t>(*pos);
      const XmlNode* content = child->FindChildElement("content");
      if (content != nullptr && content->child_count() == 1) {
        op.subtree = content->child(0)->Clone();
      }
      if (op.subtree == nullptr) {
        return Status::Corruption("insert/delete op without subtree");
      }
    } else if (tag == "update" || tag == "rename") {
      op.kind =
          tag == "update" ? EditOp::Kind::kUpdate : EditOp::Kind::kRename;
      auto xid = GetIntAttr(*child, "xid");
      if (!xid.ok()) return xid.status();
      op.target = static_cast<Xid>(*xid);
      op.old_value = GetStrAttr(*child, "old");
      op.new_value = GetStrAttr(*child, "new");
    } else if (tag == "move") {
      op.kind = EditOp::Kind::kMove;
      auto xid = GetIntAttr(*child, "xid");
      if (!xid.ok()) return xid.status();
      auto from_parent = GetIntAttr(*child, "from-parent");
      if (!from_parent.ok()) return from_parent.status();
      auto from_pos = GetIntAttr(*child, "from-pos");
      if (!from_pos.ok()) return from_pos.status();
      auto to_parent = GetIntAttr(*child, "to-parent");
      if (!to_parent.ok()) return to_parent.status();
      auto to_pos = GetIntAttr(*child, "to-pos");
      if (!to_pos.ok()) return to_pos.status();
      op.target = static_cast<Xid>(*xid);
      op.from_parent = static_cast<Xid>(*from_parent);
      op.from_pos = static_cast<uint32_t>(*from_pos);
      op.to_parent = static_cast<Xid>(*to_parent);
      op.to_pos = static_cast<uint32_t>(*to_pos);
    } else {
      return Status::Corruption("unknown delta op <" + tag + ">");
    }
    script.Add(std::move(op));
  }
  if (merged) {
    auto backward = std::move(script.restamps_);
    script.SetMergedStamps(std::move(backward), std::move(forward_stamps));
  } else if (!forward_stamps.empty()) {
    return Status::Corruption("<fstamp> in a non-merged delta");
  }
  return script;
}

void EditScript::EncodeTo(std::string* dst) const {
  PutVarintSigned64(dst, commit_ts_.micros());
  PutVarint64(dst, restamps_.size());
  for (const auto& [xid, old_ts] : restamps_) {
    PutVarint32(dst, xid);
    PutVarintSigned64(dst, old_ts.micros());
  }
  PutVarint64(dst, ops_.size());
  for (const EditOp& op : ops_) {
    PutVarint32(dst, static_cast<uint32_t>(op.kind));
    switch (op.kind) {
      case EditOp::Kind::kInsert:
      case EditOp::Kind::kDelete: {
        PutVarint32(dst, op.parent);
        PutVarint32(dst, op.pos);
        TXML_DCHECK(op.subtree != nullptr);
        EncodeNode(*op.subtree, dst);
        break;
      }
      case EditOp::Kind::kUpdate:
      case EditOp::Kind::kRename:
        PutVarint32(dst, op.target);
        PutLengthPrefixed(dst, op.old_value);
        PutLengthPrefixed(dst, op.new_value);
        break;
      case EditOp::Kind::kMove:
        PutVarint32(dst, op.target);
        PutVarint32(dst, op.from_parent);
        PutVarint32(dst, op.from_pos);
        PutVarint32(dst, op.to_parent);
        PutVarint32(dst, op.to_pos);
        break;
    }
  }
  // Trailing merged-stamps section, present only for merged scripts so
  // plain scripts keep the original byte layout (Decode distinguishes the
  // two via AtEnd).
  if (merged_) {
    PutVarint32(dst, 1);
    PutVarint64(dst, forward_stamps_.size());
    for (const auto& [xid, new_ts] : forward_stamps_) {
      PutVarint32(dst, xid);
      PutVarintSigned64(dst, new_ts.micros());
    }
  }
}

StatusOr<EditScript> EditScript::Decode(std::string_view data) {
  Decoder decoder(data);
  EditScript script;
  auto commit_ts = decoder.ReadVarintSigned64();
  if (!commit_ts.ok()) return commit_ts.status();
  script.set_commit_ts(Timestamp::FromMicros(*commit_ts));
  auto restamp_count = decoder.ReadVarint64();
  if (!restamp_count.ok()) return restamp_count.status();
  for (uint64_t i = 0; i < *restamp_count; ++i) {
    auto xid = decoder.ReadVarint32();
    if (!xid.ok()) return xid.status();
    auto old_ts = decoder.ReadVarintSigned64();
    if (!old_ts.ok()) return old_ts.status();
    script.AddRestamp(*xid, Timestamp::FromMicros(*old_ts));
  }
  auto count = decoder.ReadVarint64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto kind_raw = decoder.ReadVarint32();
    if (!kind_raw.ok()) return kind_raw.status();
    if (*kind_raw > static_cast<uint32_t>(EditOp::Kind::kRename)) {
      return Status::Corruption("bad edit op kind");
    }
    EditOp op;
    op.kind = static_cast<EditOp::Kind>(*kind_raw);
    switch (op.kind) {
      case EditOp::Kind::kInsert:
      case EditOp::Kind::kDelete: {
        auto parent = decoder.ReadVarint32();
        if (!parent.ok()) return parent.status();
        auto pos = decoder.ReadVarint32();
        if (!pos.ok()) return pos.status();
        op.parent = *parent;
        op.pos = *pos;
        auto subtree = DecodeNode(&decoder);
        if (!subtree.ok()) return subtree.status();
        op.subtree = std::move(*subtree);
        break;
      }
      case EditOp::Kind::kUpdate:
      case EditOp::Kind::kRename: {
        auto target = decoder.ReadVarint32();
        if (!target.ok()) return target.status();
        auto old_value = decoder.ReadLengthPrefixed();
        if (!old_value.ok()) return old_value.status();
        auto new_value = decoder.ReadLengthPrefixed();
        if (!new_value.ok()) return new_value.status();
        op.target = *target;
        op.old_value = std::string(*old_value);
        op.new_value = std::string(*new_value);
        break;
      }
      case EditOp::Kind::kMove: {
        auto target = decoder.ReadVarint32();
        if (!target.ok()) return target.status();
        auto from_parent = decoder.ReadVarint32();
        if (!from_parent.ok()) return from_parent.status();
        auto from_pos = decoder.ReadVarint32();
        if (!from_pos.ok()) return from_pos.status();
        auto to_parent = decoder.ReadVarint32();
        if (!to_parent.ok()) return to_parent.status();
        auto to_pos = decoder.ReadVarint32();
        if (!to_pos.ok()) return to_pos.status();
        op.target = *target;
        op.from_parent = *from_parent;
        op.from_pos = *from_pos;
        op.to_parent = *to_parent;
        op.to_pos = *to_pos;
        break;
      }
    }
    script.Add(std::move(op));
  }
  if (!decoder.AtEnd()) {
    auto merged_flag = decoder.ReadVarint32();
    if (!merged_flag.ok()) return merged_flag.status();
    if (*merged_flag != 1) {
      return Status::Corruption("bad merged-stamps flag");
    }
    auto forward_count = decoder.ReadVarint64();
    if (!forward_count.ok()) return forward_count.status();
    std::vector<std::pair<Xid, Timestamp>> forward;
    for (uint64_t i = 0; i < *forward_count; ++i) {
      auto xid = decoder.ReadVarint32();
      if (!xid.ok()) return xid.status();
      auto new_ts = decoder.ReadVarintSigned64();
      if (!new_ts.ok()) return new_ts.status();
      forward.emplace_back(*xid, Timestamp::FromMicros(*new_ts));
    }
    auto backward = std::move(script.restamps_);
    script.SetMergedStamps(std::move(backward), std::move(forward));
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after edit script");
  }
  return script;
}

}  // namespace txml
