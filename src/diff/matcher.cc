#include "src/diff/matcher.h"

#include <algorithm>
#include <string_view>
#include <vector>

namespace txml {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t HashBytes(uint64_t h, std::string_view data) {
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

struct NodeInfo {
  uint64_t hash = 0;
  uint64_t weight = 0;  // subtree size + total text length
};

/// Per-tree side data computed in one post-order pass.
class TreeInfo {
 public:
  explicit TreeInfo(const XmlNode& root) { Compute(root); }

  const NodeInfo& info(const XmlNode* node) const { return infos_.at(node); }

  /// Nodes in post-order (children before parents).
  const std::vector<const XmlNode*>& postorder() const { return postorder_; }

 private:
  NodeInfo Compute(const XmlNode& node) {
    NodeInfo info;
    uint64_t h = kFnvOffset;
    h = HashU64(h, static_cast<uint64_t>(node.kind()));
    h = HashBytes(h, node.name());
    h = HashBytes(h, node.value());
    info.weight = 1 + node.name().size() + node.value().size();
    for (const auto& child : node.children()) {
      NodeInfo child_info = Compute(*child);
      h = HashU64(h, child_info.hash);
      info.weight += child_info.weight;
    }
    info.hash = h;
    infos_[&node] = info;
    postorder_.push_back(&node);
    return info;
  }

  std::unordered_map<const XmlNode*, NodeInfo> infos_;
  std::vector<const XmlNode*> postorder_;
};

/// Matches the full subtrees rooted at old_node/new_node, pairwise. Only
/// called for content-identical subtrees, so shapes agree.
void MatchSubtreesRecursively(const XmlNode* old_node,
                              const XmlNode* new_node,
                              NodeMatching* matching) {
  matching->AddPair(old_node, new_node);
  for (size_t i = 0; i < old_node->child_count(); ++i) {
    MatchSubtreesRecursively(old_node->child(i), new_node->child(i),
                             matching);
  }
}

/// True if no node of the subtree is matched yet (old side). Needed in
/// phase 1: with duplicated content, a descendant of a hash-identical old
/// subtree may already be matched into a different location, and matching
/// the ancestor pairwise would then double-assign it.
bool OldSubtreeFullyUnmatched(const XmlNode& node,
                              const NodeMatching& matching) {
  if (matching.OldMatched(&node)) return false;
  for (const auto& child : node.children()) {
    if (!OldSubtreeFullyUnmatched(*child, matching)) return false;
  }
  return true;
}

bool CanPair(const XmlNode& a, const XmlNode& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case XmlNode::Kind::kElement:
      // Elements pair by name; renames are only recognised at the root.
      return a.name() == b.name();
    case XmlNode::Kind::kAttribute:
      return a.name() == b.name();
    case XmlNode::Kind::kText:
    case XmlNode::Kind::kComment:
      return true;
  }
  return false;
}

}  // namespace

uint64_t SubtreeHash(const XmlNode& node) {
  uint64_t h = kFnvOffset;
  h = HashU64(h, static_cast<uint64_t>(node.kind()));
  h = HashBytes(h, node.name());
  h = HashBytes(h, node.value());
  for (const auto& child : node.children()) {
    h = HashU64(h, SubtreeHash(*child));
  }
  return h;
}

NodeMatching MatchTrees(const XmlNode& old_root, const XmlNode& new_root) {
  NodeMatching matching;
  TreeInfo old_info(old_root);
  TreeInfo new_info(new_root);

  // Index old subtrees by hash.
  std::unordered_map<uint64_t, std::vector<const XmlNode*>> old_by_hash;
  for (const XmlNode* node : old_info.postorder()) {
    old_by_hash[old_info.info(node).hash].push_back(node);
  }

  // Phase 1: greedy identical-subtree matching, heaviest new subtrees
  // first. A subtree whose ancestor is already matched is skipped — the
  // ancestor match already covered it.
  std::vector<const XmlNode*> new_nodes = new_info.postorder();
  std::sort(new_nodes.begin(), new_nodes.end(),
            [&](const XmlNode* a, const XmlNode* b) {
              return new_info.info(a).weight > new_info.info(b).weight;
            });
  matching.AddPair(&old_root, &new_root);  // roots force-matched
  for (const XmlNode* new_node : new_nodes) {
    if (matching.NewMatched(new_node)) continue;
    // Skip if any ancestor matched into an identical subtree (covered).
    auto it = old_by_hash.find(new_info.info(new_node).hash);
    if (it == old_by_hash.end()) continue;
    const XmlNode* best = nullptr;
    for (const XmlNode* candidate : it->second) {
      if (candidate == &old_root) continue;  // root already matched
      if (!OldSubtreeFullyUnmatched(*candidate, matching)) continue;
      best = candidate;
      // Prefer a candidate whose parent corresponds to the new node's
      // parent — keeps content in place instead of fabricating moves.
      const XmlNode* new_parent = new_node->parent();
      if (new_parent != nullptr &&
          matching.OldFor(new_parent) == candidate->parent() &&
          matching.NewMatched(new_parent)) {
        break;
      }
      const XmlNode* old_parent = candidate->parent();
      if (new_parent != nullptr && old_parent != nullptr &&
          matching.NewFor(old_parent) == new_parent) {
        break;
      }
    }
    if (best != nullptr && new_node != &new_root) {
      MatchSubtreesRecursively(best, new_node, &matching);
    }
  }

  // Phase 2: upward propagation. Post-order over the new tree: if a node is
  // matched and parents are unmatched but pairable, match the parents.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const XmlNode* new_node : new_info.postorder()) {
      if (!matching.NewMatched(new_node)) continue;
      const XmlNode* old_node = matching.OldFor(new_node);
      const XmlNode* new_parent = new_node->parent();
      const XmlNode* old_parent = old_node->parent();
      if (new_parent == nullptr || old_parent == nullptr) continue;
      if (matching.NewMatched(new_parent) || matching.OldMatched(old_parent)) {
        continue;
      }
      if (CanPair(*old_parent, *new_parent)) {
        matching.AddPair(old_parent, new_parent);
        changed = true;
      }
    }
  }

  // Phase 3: downward completion. Visit matched pairs parents-first
  // (reverse post-order); children still unmatched on both sides are paired
  // by kind+name in document order. Pairs created here are themselves
  // visited later in the sweep, so completion cascades to the leaves.
  const std::vector<const XmlNode*>& postorder = new_info.postorder();
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    const XmlNode* new_node = *it;
    if (!matching.NewMatched(new_node)) continue;
    const XmlNode* old_node = matching.OldFor(new_node);
    std::vector<const XmlNode*> old_unmatched;
    for (const auto& child : old_node->children()) {
      if (!matching.OldMatched(child.get())) {
        old_unmatched.push_back(child.get());
      }
    }
    std::vector<bool> old_used(old_unmatched.size(), false);
    for (const auto& child : new_node->children()) {
      if (matching.NewMatched(child.get())) continue;
      for (size_t i = 0; i < old_unmatched.size(); ++i) {
        if (old_used[i]) continue;
        if (CanPair(*old_unmatched[i], *child)) {
          matching.AddPair(old_unmatched[i], child.get());
          old_used[i] = true;
          break;
        }
      }
    }
  }

  return matching;
}

}  // namespace txml
