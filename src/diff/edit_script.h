#ifndef TXML_SRC_DIFF_EDIT_SCRIPT_H_
#define TXML_SRC_DIFF_EDIT_SCRIPT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/timestamp.h"

#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// One operation of an edit script. Operations address nodes by XID and are
/// applied *in sequence*: positions refer to the tree state after all
/// preceding operations of the same script.
///
/// Every operation carries enough information to be inverted, which is what
/// makes a script a *completed delta* (paper Section 7.1: "completed deltas
/// can be used both as forward and backward deltas"):
///  * kInsert stores the inserted subtree (so backward application knows it
///    may simply remove it — and forward application has the content);
///  * kDelete stores the deleted subtree and its position;
///  * kUpdate stores both old and new value;
///  * kMove stores both source and destination position.
struct EditOp {
  enum class Kind { kInsert, kDelete, kUpdate, kMove, kRename };

  Kind kind = Kind::kUpdate;

  /// kInsert/kDelete: XID of the parent element.
  Xid parent = kInvalidXid;
  /// kInsert/kDelete: position among the parent's children.
  uint32_t pos = 0;
  /// kInsert/kDelete: the subtree, with final XIDs assigned.
  std::unique_ptr<XmlNode> subtree;

  /// kUpdate/kMove/kRename: the addressed node.
  Xid target = kInvalidXid;
  /// kUpdate: old/new text or attribute value. kRename: old/new name.
  std::string old_value;
  std::string new_value;

  /// kMove: source location.
  Xid from_parent = kInvalidXid;
  uint32_t from_pos = 0;
  /// kMove: destination location (in the tree state at application time).
  Xid to_parent = kInvalidXid;
  uint32_t to_pos = 0;

  EditOp Clone() const;
};

/// A completed delta between two consecutive versions of a document:
/// applying it forward turns version n into version n+1; applying it
/// backward turns n+1 into n. Scripts serialize both as XML (the paper's
/// closure requirement: "as long as an edit script is represented in XML
/// this operator does not break closure properties") and in a compact
/// binary form for the repository.
class EditScript {
 public:
  EditScript() = default;
  EditScript(EditScript&&) = default;
  EditScript& operator=(EditScript&&) = default;

  std::vector<EditOp>& ops() { return ops_; }
  const std::vector<EditOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty() && restamps_.empty(); }
  size_t size() const { return ops_.size(); }

  void Add(EditOp op) { ops_.push_back(std::move(op)); }

  /// Timestamp bookkeeping. Surviving (matched) nodes whose timestamp
  /// changed in this version transition are listed with their *old* stamp;
  /// the new stamp is uniformly the version's commit timestamp. Forward
  /// application stamps them with commit_ts, backward application restores
  /// the old stamps — so reconstructed versions answer TIME() correctly.
  void set_commit_ts(Timestamp ts) { commit_ts_ = ts; }
  Timestamp commit_ts() const { return commit_ts_; }
  void AddRestamp(Xid xid, Timestamp old_ts) {
    restamps_.emplace_back(xid, old_ts);
  }
  const std::vector<std::pair<Xid, Timestamp>>& restamps() const {
    return restamps_;
  }

  /// Marks this script as a *merged* delta spanning several original
  /// version transitions (produced by the vacuum subsystem,
  /// src/storage/vacuum.h). A merged script cannot restamp uniformly with
  /// commit_ts on forward application — a node restamped mid-range keeps
  /// the stamp of the last transition that touched it — so it carries two
  /// explicit stamp lists:
  ///  * `backward` (stored as restamps()): per surviving XID, the stamp the
  ///    node has in the merge's *base* version — restored by
  ///    ApplyBackward exactly like a plain script;
  ///  * `forward` (forward_stamps()): per XID that survives to the merge's
  ///    *target* version with a changed stamp, the stamp it has there —
  ///    applied by ApplyForward instead of the uniform commit_ts rule.
  void SetMergedStamps(std::vector<std::pair<Xid, Timestamp>> backward,
                       std::vector<std::pair<Xid, Timestamp>> forward) {
    restamps_ = std::move(backward);
    forward_stamps_ = std::move(forward);
    merged_ = true;
  }
  bool merged() const { return merged_; }
  const std::vector<std::pair<Xid, Timestamp>>& forward_stamps() const {
    return forward_stamps_;
  }

  /// Applies the script to `root` (version n), producing version n+1 in
  /// place. Fails with Corruption if an addressed XID is missing or a
  /// position is out of range.
  Status ApplyForward(XmlNode* root) const;

  /// Applies the inverse script to `root` (version n+1), producing version
  /// n in place.
  Status ApplyBackward(XmlNode* root) const;

  EditScript Clone() const;

  /// The XML representation, e.g.
  ///   <delta>
  ///     <update xid="7" old="15" new="18"/>
  ///     <insert parent="1" pos="2">…subtree…</insert>
  ///   </delta>
  /// Subtrees carry xid attributes so the delta is self-contained.
  XmlDocument ToXml() const;

  /// Parses the XML representation back (inverse of ToXml).
  static StatusOr<EditScript> FromXml(const XmlNode& delta_root);

  /// Compact binary representation for the repository.
  void EncodeTo(std::string* dst) const;
  static StatusOr<EditScript> Decode(std::string_view data);

  /// Total number of nodes carried in insert/delete subtrees (a size
  /// measure used by the storage-space experiments).
  size_t PayloadNodeCount() const;

 private:
  std::vector<EditOp> ops_;
  Timestamp commit_ts_;
  std::vector<std::pair<Xid, Timestamp>> restamps_;
  /// See SetMergedStamps().
  bool merged_ = false;
  std::vector<std::pair<Xid, Timestamp>> forward_stamps_;
};

}  // namespace txml

#endif  // TXML_SRC_DIFF_EDIT_SCRIPT_H_
