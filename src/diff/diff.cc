#include "src/diff/diff.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/util/logging.h"
#include "src/util/macros.h"

namespace txml {
namespace {

/// Assigns final XIDs to the new tree: matched nodes inherit, new nodes
/// allocate.
void AssignXids(const NodeMatching& matching, XmlNode* new_node,
                XidAllocator* alloc) {
  const XmlNode* old_node = matching.OldFor(new_node);
  if (old_node != nullptr) {
    TXML_DCHECK(old_node->xid() != kInvalidXid);
    new_node->set_xid(old_node->xid());
  } else {
    new_node->set_xid(alloc->Allocate());
  }
  for (size_t i = 0; i < new_node->child_count(); ++i) {
    AssignXids(matching, new_node->child(i), alloc);
  }
}

/// True if no node of the new subtree is matched (safe to emit as one
/// insert operation).
bool FullyUnmatched(const NodeMatching& matching, const XmlNode* new_node) {
  if (matching.NewMatched(new_node)) return false;
  for (const auto& child : new_node->children()) {
    if (!FullyUnmatched(matching, child.get())) return false;
  }
  return true;
}

/// Shallow clone: the node itself without children, keeping xid/timestamp.
std::unique_ptr<XmlNode> ShallowClone(const XmlNode& node) {
  std::unique_ptr<XmlNode> copy;
  switch (node.kind()) {
    case XmlNode::Kind::kElement:
      copy = XmlNode::Element(node.name());
      break;
    case XmlNode::Kind::kText:
      copy = XmlNode::Text(node.value());
      break;
    case XmlNode::Kind::kAttribute:
      copy = XmlNode::Attribute(node.name(), node.value());
      break;
    case XmlNode::Kind::kComment:
      copy = XmlNode::Comment(node.value());
      break;
  }
  copy->set_xid(node.xid());
  copy->set_timestamp(node.timestamp());
  return copy;
}

/// Generates the edit script by simulating it on a working copy of the old
/// tree. See DiffTrees documentation for the three passes.
class ScriptBuilder {
 public:
  ScriptBuilder(const XmlNode& old_root, const XmlNode& new_root,
                const NodeMatching& matching)
      : new_root_(new_root), matching_(matching) {
    working_ = old_root.Clone();
    IndexSubtree(working_.get());
  }

  StatusOr<EditScript> Build() {
    // Root rename (roots are force-matched).
    if (working_->name() != new_root_.name()) {
      EditOp op;
      op.kind = EditOp::Kind::kRename;
      op.target = working_->xid();
      op.old_value = working_->name();
      op.new_value = new_root_.name();
      working_->set_name(new_root_.name());
      script_.Add(std::move(op));
    }
    // Pass 1: place every new node (moves + inserts), top-down.
    TXML_RETURN_IF_ERROR(Arrange(&new_root_));
    // Pass 2: delete leftovers (now fully-unmatched old content).
    TXML_RETURN_IF_ERROR(DeleteLeftovers(&new_root_));
    // Pass 3: value updates of matched text/attribute nodes.
    EmitUpdates(&new_root_);
    return std::move(script_);
  }

  const XmlNode* working_root() const { return working_.get(); }

 private:
  void IndexSubtree(XmlNode* node) {
    by_xid_[node->xid()] = node;
    for (size_t i = 0; i < node->child_count(); ++i) {
      IndexSubtree(node->child(i));
    }
  }

  void UnindexSubtree(const XmlNode* node) {
    by_xid_.erase(node->xid());
    for (const auto& child : node->children()) {
      UnindexSubtree(child.get());
    }
  }

  /// Ensures the working-copy element for `new_node` contains the desired
  /// children *in relative order* (leftover old children may stay
  /// interleaved until the delete pass); recurses. Placements are relative
  /// to the previously placed sibling rather than to absolute positions —
  /// a deleted or inserted sibling therefore does not cascade into move
  /// operations for everything after it.
  Status Arrange(const XmlNode* new_node) {
    XmlNode* w = by_xid_.at(new_node->xid());
    // Position of the most recently placed desired child in w.
    size_t last_placed = 0;
    bool any_placed = false;
    for (size_t i = 0; i < new_node->child_count(); ++i) {
      const XmlNode* c = new_node->child(i);
      auto it = by_xid_.find(c->xid());
      if (it == by_xid_.end()) {
        // Newly inserted node. If its whole subtree is new, one insert op
        // covers it; otherwise insert it shallow and let recursion pull
        // the matched descendants in via moves.
        bool whole = FullyUnmatched(matching_, c);
        size_t pos = any_placed ? last_placed + 1 : 0;
        EditOp op;
        op.kind = EditOp::Kind::kInsert;
        op.parent = w->xid();
        op.pos = static_cast<uint32_t>(pos);
        op.subtree = whole ? c->Clone() : ShallowClone(*c);
        XmlNode* inserted = w->InsertChild(pos, op.subtree->Clone());
        IndexSubtree(inserted);
        script_.Add(std::move(op));
        last_placed = pos;
        any_placed = true;
        if (!whole) {
          TXML_RETURN_IF_ERROR(Arrange(c));
        }
        continue;
      }
      XmlNode* wc = it->second;
      XmlNode* current_parent = wc->parent();
      if (current_parent == nullptr) {
        return Status::Internal("matched node is the working root but "
                                "appears as a child in the new version");
      }
      size_t current_pos = current_parent->IndexOfChild(wc);
      if (current_parent == w &&
          (!any_placed || current_pos > last_placed)) {
        // Already in place relative to the previously placed sibling.
        last_placed = current_pos;
        any_placed = true;
      } else {
        // Detaching from before last_placed shifts it left by one.
        size_t pos;
        if (current_parent == w) {
          pos = any_placed ? last_placed : 0;
        } else {
          pos = any_placed ? last_placed + 1 : 0;
        }
        EditOp op;
        op.kind = EditOp::Kind::kMove;
        op.target = wc->xid();
        op.from_parent = current_parent->xid();
        op.from_pos = static_cast<uint32_t>(current_pos);
        op.to_parent = w->xid();
        op.to_pos = static_cast<uint32_t>(pos);
        std::unique_ptr<XmlNode> detached =
            current_parent->RemoveChild(current_pos);
        w->InsertChild(pos, std::move(detached));
        script_.Add(std::move(op));
        last_placed = pos;
        any_placed = true;
      }
      TXML_RETURN_IF_ERROR(Arrange(c));
    }
    return Status::OK();
  }

  /// After Arrange every matched node sits under its final parent, so any
  /// remaining child that is not part of the new version is a fully
  /// unmatched leftover: delete it (positions recorded at emit time).
  Status DeleteLeftovers(const XmlNode* new_node) {
    XmlNode* w = by_xid_.at(new_node->xid());
    std::unordered_set<Xid> desired;
    desired.reserve(new_node->child_count());
    for (const auto& child : new_node->children()) {
      desired.insert(child->xid());
    }
    for (size_t i = 0; i < w->child_count();) {
      XmlNode* child = w->child(i);
      if (desired.contains(child->xid())) {
        ++i;
        continue;
      }
      EditOp op;
      op.kind = EditOp::Kind::kDelete;
      op.parent = w->xid();
      op.pos = static_cast<uint32_t>(i);
      op.subtree = child->Clone();
      UnindexSubtree(child);
      w->RemoveChild(i);
      script_.Add(std::move(op));
    }
    for (size_t i = 0; i < new_node->child_count(); ++i) {
      TXML_RETURN_IF_ERROR(DeleteLeftovers(new_node->child(i)));
    }
    return Status::OK();
  }

  void EmitUpdates(const XmlNode* new_node) {
    const XmlNode* old_node = matching_.OldFor(new_node);
    if (old_node != nullptr && old_node->value() != new_node->value()) {
      EditOp op;
      op.kind = EditOp::Kind::kUpdate;
      op.target = new_node->xid();
      op.old_value = old_node->value();
      op.new_value = new_node->value();
      by_xid_.at(new_node->xid())->set_value(new_node->value());
      script_.Add(std::move(op));
    }
    for (const auto& child : new_node->children()) {
      EmitUpdates(child.get());
    }
  }

  const XmlNode& new_root_;
  const NodeMatching& matching_;
  std::unique_ptr<XmlNode> working_;
  std::unordered_map<Xid, XmlNode*> by_xid_;
  EditScript script_;
};

/// Records surviving nodes whose timestamp changed (old stamp), so delta
/// application can restore/refresh stamps in both directions.
void CollectRestamps(const NodeMatching& matching, const XmlNode& new_node,
                     EditScript* script) {
  const XmlNode* old_node = matching.OldFor(&new_node);
  if (old_node != nullptr &&
      old_node->timestamp() != new_node.timestamp()) {
    script->AddRestamp(new_node.xid(), old_node->timestamp());
  }
  for (const auto& child : new_node.children()) {
    CollectRestamps(matching, *child, script);
  }
}

}  // namespace

StatusOr<DiffResult> DiffTrees(const XmlNode& old_root, XmlNode* new_root,
                               XidAllocator* alloc, Timestamp commit_ts) {
  DiffResult result;
  result.matching = MatchTrees(old_root, *new_root);
  result.old_node_count = old_root.CountNodes();
  result.new_node_count = new_root->CountNodes();
  AssignXids(result.matching, new_root, alloc);
  PropagateTimestamps(old_root, new_root, result.matching, commit_ts);

  ScriptBuilder builder(old_root, *new_root, result.matching);
  auto script = builder.Build();
  if (!script.ok()) return script.status();
  result.script = std::move(*script);
  result.script.set_commit_ts(commit_ts);
  CollectRestamps(result.matching, *new_root, &result.script);
#ifndef NDEBUG
  if (!builder.working_root()->ContentEquals(*new_root)) {
    return Status::Internal("diff self-check failed: script does not "
                            "reproduce the new version");
  }
#endif
  return result;
}

namespace {

void CopySubtreeTimestamps(const XmlNode& old_node, XmlNode* new_node) {
  new_node->set_timestamp(old_node.timestamp());
  TXML_DCHECK(old_node.child_count() == new_node->child_count());
  for (size_t i = 0; i < new_node->child_count(); ++i) {
    CopySubtreeTimestamps(*old_node.child(i), new_node->child(i));
  }
}

/// Returns the subtree hash while assigning timestamps: unchanged matched
/// subtrees keep old stamps, changed ones get commit_ts.
void AssignTimestamps(const NodeMatching& matching, XmlNode* new_node,
                      Timestamp commit_ts,
                      const std::unordered_map<const XmlNode*, uint64_t>&
                          old_hashes,
                      const std::unordered_map<const XmlNode*, uint64_t>&
                          new_hashes) {
  const XmlNode* old_node = matching.OldFor(new_node);
  if (old_node != nullptr &&
      old_hashes.at(old_node) == new_hashes.at(new_node) &&
      old_node->child_count() == new_node->child_count()) {
    CopySubtreeTimestamps(*old_node, new_node);
    return;
  }
  new_node->set_timestamp(commit_ts);
  for (size_t i = 0; i < new_node->child_count(); ++i) {
    AssignTimestamps(matching, new_node->child(i), commit_ts, old_hashes,
                     new_hashes);
  }
}

uint64_t HashInto(const XmlNode& node,
                  std::unordered_map<const XmlNode*, uint64_t>* out);

uint64_t HashInto(const XmlNode& node,
                  std::unordered_map<const XmlNode*, uint64_t>* out) {
  // SubtreeHash recomputed per node would be quadratic; memoize bottom-up.
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  auto mix_bytes = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(node.kind()));
  mix_bytes(node.name());
  mix_bytes(node.value());
  for (const auto& child : node.children()) {
    mix(HashInto(*child, out));
  }
  (*out)[&node] = h;
  return h;
}

}  // namespace

void PropagateTimestamps(const XmlNode& old_root, XmlNode* new_root,
                         const NodeMatching& matching, Timestamp commit_ts) {
  std::unordered_map<const XmlNode*, uint64_t> old_hashes;
  std::unordered_map<const XmlNode*, uint64_t> new_hashes;
  HashInto(old_root, &old_hashes);
  HashInto(*new_root, &new_hashes);
  AssignTimestamps(matching, new_root, commit_ts, old_hashes, new_hashes);
}

void StampAll(XmlNode* root, Timestamp commit_ts) {
  root->set_timestamp(commit_ts);
  for (size_t i = 0; i < root->child_count(); ++i) {
    StampAll(root->child(i), commit_ts);
  }
}

void AssignFreshXids(XmlNode* root, XidAllocator* alloc) {
  root->set_xid(alloc->Allocate());
  for (size_t i = 0; i < root->child_count(); ++i) {
    AssignFreshXids(root->child(i), alloc);
  }
}

}  // namespace txml
