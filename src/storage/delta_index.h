#ifndef TXML_SRC_STORAGE_DELTA_INDEX_H_
#define TXML_SRC_STORAGE_DELTA_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "src/util/coding.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"

namespace txml {

/// The per-document delta index of Section 7.1: maps dense version numbers
/// to the timestamps of the corresponding versions ("for each numbered
/// delta, we store the timestamp of the actual version in the delta
/// index"). Kept memory-resident, as the paper assumes; an array suffices
/// because versions are appended in timestamp order.
///
/// This is also the structure behind the PreviousTS / NextTS / CurrentTS
/// operators (Section 7.3.7): each is one lookup here.
class DeltaIndex {
 public:
  /// Appends a version; timestamps must be strictly increasing.
  void Append(Timestamp ts) { stamps_.push_back(ts); }

  /// Number of versions recorded since the document was created — i.e. the
  /// version number of the latest version. After DropBelow this stays
  /// stable (version numbers are never reused), even though stamps below
  /// first_version() are gone.
  VersionNum version_count() const {
    return static_cast<VersionNum>(first_version_ - 1 + stamps_.size());
  }
  bool empty() const { return stamps_.empty(); }

  /// The oldest version that still has a timestamp. 1 unless DropBelow has
  /// run (vacuum with a drop_before horizon).
  VersionNum first_version() const { return first_version_; }

  /// Forgets all stamps below version `first` (which becomes the new
  /// first_version()). Version numbers of the remaining stamps are
  /// unchanged. Precondition: first_version() <= first <= version_count().
  void DropBelow(VersionNum first) {
    stamps_.erase(stamps_.begin(),
                  stamps_.begin() + (first - first_version_));
    first_version_ = first;
  }

  /// Re-applies a persisted DropBelow offset after Decode (the binary form
  /// stores only the surviving stamps; the owner stores the offset).
  /// Precondition: no offset applied yet.
  void RestoreFirstVersion(VersionNum first) { first_version_ = first; }

  /// Timestamp of version v. Precondition: first_version() <= v <= count.
  Timestamp TimestampOf(VersionNum v) const {
    return stamps_[v - first_version_];
  }

  Timestamp first_timestamp() const { return stamps_.front(); }
  Timestamp last_timestamp() const { return stamps_.back(); }

  /// The version valid at time t: the largest v with TimestampOf(v) <= t,
  /// or nullopt if t precedes the first version. (Whether the document was
  /// already deleted at t is the owner's business — the index only maps
  /// times to versions.)
  std::optional<VersionNum> VersionAt(Timestamp t) const;

  /// Validity interval of version v: [ts(v), ts(v+1)) — open-ended for the
  /// last version. The caller caps the last interval at the document's
  /// delete time if any.
  TimeInterval ValidityOf(VersionNum v) const {
    return TimeInterval{TimestampOf(v), v < version_count()
                                            ? TimestampOf(v + 1)
                                            : Timestamp::Infinity()};
  }

  /// Timestamp of the version preceding the one valid at `ts`, if any.
  std::optional<Timestamp> PreviousTS(Timestamp ts) const;

  /// Timestamp of the version following the one valid at `ts`, if any.
  std::optional<Timestamp> NextTS(Timestamp ts) const;

  /// Timestamp of the current (latest) version.
  std::optional<Timestamp> CurrentTS() const {
    if (stamps_.empty()) return std::nullopt;
    return stamps_.back();
  }

  void EncodeTo(std::string* dst) const;
  static StatusOr<DeltaIndex> Decode(Decoder* decoder);

 private:
  std::vector<Timestamp> stamps_;
  VersionNum first_version_ = 1;
};

}  // namespace txml

#endif  // TXML_SRC_STORAGE_DELTA_INDEX_H_
