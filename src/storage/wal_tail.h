#ifndef TXML_SRC_STORAGE_WAL_TAIL_H_
#define TXML_SRC_STORAGE_WAL_TAIL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/storage/wal.h"
#include "src/util/synchronization.h"
#include "src/util/thread_annotations.h"

namespace txml {

/// In-memory ring of the most recently committed WAL records — the live
/// tail a replication shipper reads without touching the log file
/// (DESIGN.md §11). With group commit (DESIGN.md §12) the log-writer
/// thread pushes each record here only AFTER its batch's write and sync
/// decision succeeded, so the ring holds exactly the durable prefix of
/// the log: a follower can never observe a sequence the leader might
/// still lose to a crash. Shipper threads block on ReadAfter until
/// records past their cursor arrive.
///
/// The buffer is bounded by records and bytes; eviction advances
/// `evicted_through`, and a reader whose cursor falls below that
/// high-water mark is told to fall back to the on-disk WAL (or, if the
/// disk log was truncated past its cursor too, to a checkpoint re-seed).
/// Push never blocks and never fails: replication lag degrades followers,
/// never the leader's commit latency.
class WalTailBuffer {
 public:
  struct Options {
    /// Eviction starts once the ring exceeds either bound.
    uint64_t max_records = 4096;
    uint64_t max_bytes = 4 << 20;
  };

  struct ReadResult {
    std::vector<WalRecord> records;
    /// True when the cursor predates the ring: the records requested were
    /// evicted and must come from the on-disk WAL instead.
    bool below_floor = false;
    /// Highest sequence ever pushed (0 when nothing was pushed yet) —
    /// the shipper forwards it so followers can report lag.
    uint64_t last_sequence = 0;
  };

  explicit WalTailBuffer(Options options);
  WalTailBuffer() : WalTailBuffer(Options()) {}

  WalTailBuffer(const WalTailBuffer&) = delete;
  WalTailBuffer& operator=(const WalTailBuffer&) = delete;

  /// Appends a committed record (sequence must be increasing; the single
  /// GroupCommitWal writer thread is the only pusher, and it pushes each
  /// batch after its sync decision, so followers only ever read
  /// acknowledged records). Evicts from the front to stay in budget.
  void Push(const WalRecord& record) EXCLUDES(mu_);

  /// Seeds the floor after recovery: records at or below `sequence` are
  /// declared evicted (they live in the checkpoint + on-disk WAL only).
  void SetFloor(uint64_t sequence) EXCLUDES(mu_);

  /// Returns records with sequence > `after`, up to `max_records` /
  /// `max_bytes` (at least one record is returned even if oversized).
  /// Blocks up to `timeout_ms` for new records when the ring holds
  /// nothing past `after`; an empty `records` with below_floor false
  /// means the wait timed out (heartbeat time). Wakes early on Close.
  ReadResult ReadAfter(uint64_t after, uint64_t max_records,
                       uint64_t max_bytes, int64_t timeout_ms) EXCLUDES(mu_);

  /// Wakes every blocked reader permanently (server shutdown); subsequent
  /// reads return immediately.
  void Close() EXCLUDES(mu_);

  uint64_t last_sequence() const EXCLUDES(mu_);
  uint64_t evicted_through() const EXCLUDES(mu_);

 private:
  void EvictLocked() REQUIRES(mu_);

  const Options options_;
  mutable Mutex mu_{LockRank::kWalTail};
  CondVar cv_;
  std::deque<WalRecord> ring_ GUARDED_BY(mu_);
  uint64_t ring_bytes_ GUARDED_BY(mu_) = 0;
  /// Sequences <= this are gone from the ring.
  uint64_t evicted_through_ GUARDED_BY(mu_) = 0;
  uint64_t last_sequence_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace txml

#endif  // TXML_SRC_STORAGE_WAL_TAIL_H_
