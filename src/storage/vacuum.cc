#include "src/storage/vacuum.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "src/storage/store.h"
#include "src/storage/versioned_document.h"
#include "src/util/logging.h"
#include "src/util/macros.h"

namespace txml {
namespace {

void ForEachXid(const XmlNode& node, const std::function<void(Xid)>& fn) {
  if (node.xid() != kInvalidXid) fn(node.xid());
  for (size_t i = 0; i < node.child_count(); ++i) {
    ForEachXid(*node.child(i), fn);
  }
}

}  // namespace

Status ValidateRetentionPolicy(const RetentionPolicy& policy) {
  if (!policy.drop_before.has_value() &&
      !policy.coarsen_older_than.has_value()) {
    return Status::InvalidArgument(
        "retention policy names no horizon (drop_before or "
        "coarsen_older_than)");
  }
  if (policy.coarsen_older_than.has_value() && policy.keep_every < 1) {
    return Status::InvalidArgument("keep_every must be >= 1");
  }
  return Status::OK();
}

EditScript MergeEditScripts(std::vector<EditScript> parts) {
  TXML_CHECK(!parts.empty());
  EditScript merged;
  merged.set_commit_ts(parts.back().commit_ts());

  std::vector<EditOp> ops;
  // (xid, kind) -> index into `ops` of the op holding the running value,
  // for the two position-independent op kinds. Update/rename chains on one
  // node collapse into the *earlier* op (its position in the stream is
  // safe: nothing between the chain's links can observe the node's value
  // or name, since anything that captures them — a delete of an enclosing
  // subtree — would make the later link impossible). Structural ops are
  // never coalesced: insert+delete cancellation would require position
  // fix-ups across every op in between, and moves are position-dependent
  // on both ends.
  std::map<std::pair<Xid, int>, size_t> value_ops;
  // XIDs first inserted within the merged range: they do not exist in the
  // merge's base version, so they never get a backward stamp.
  std::set<Xid> inserted;
  std::map<Xid, Timestamp> backward;  // xid -> stamp in the base version
  std::map<Xid, Timestamp> forward;   // xid -> stamp in the target version

  for (EditScript& part : parts) {
    for (EditOp& op : part.ops()) {
      switch (op.kind) {
        case EditOp::Kind::kInsert:
          ForEachXid(*op.subtree, [&](Xid x) { inserted.insert(x); });
          ops.push_back(std::move(op));
          break;
        case EditOp::Kind::kDelete:
          // Deleted nodes do not survive to the target version: their
          // forward stamps (if any) die with them. Their *backward* stamps
          // stay — undo-delete re-inserts the stored subtree with its
          // deletion-time stamps, and the backward list restores the base
          // ones.
          ForEachXid(*op.subtree, [&](Xid x) { forward.erase(x); });
          ops.push_back(std::move(op));
          break;
        case EditOp::Kind::kUpdate:
        case EditOp::Kind::kRename: {
          auto key = std::make_pair(op.target, static_cast<int>(op.kind));
          auto it = value_ops.find(key);
          if (it != value_ops.end()) {
            ops[it->second].new_value = std::move(op.new_value);
          } else {
            value_ops.emplace(key, ops.size());
            ops.push_back(std::move(op));
          }
          break;
        }
        case EditOp::Kind::kMove:
          ops.push_back(std::move(op));
          break;
      }
    }
    // A part's restamps apply after its ops. A part that is itself a
    // merged delta carries explicit per-xid target stamps; a plain part
    // stamps every restamped xid with its commit timestamp.
    if (part.merged()) {
      for (const auto& [xid, old_ts] : part.restamps()) {
        if (inserted.count(xid) == 0) backward.try_emplace(xid, old_ts);
      }
      for (const auto& [xid, new_ts] : part.forward_stamps()) {
        forward[xid] = new_ts;
      }
    } else {
      for (const auto& [xid, old_ts] : part.restamps()) {
        if (inserted.count(xid) == 0) backward.try_emplace(xid, old_ts);
        forward[xid] = part.commit_ts();
      }
    }
  }

  // Coalesced chains that ended where they started are no-ops (their
  // restamps, if any, still apply — the node's timestamp did change).
  for (EditOp& op : ops) {
    if ((op.kind == EditOp::Kind::kUpdate ||
         op.kind == EditOp::Kind::kRename) &&
        op.old_value == op.new_value) {
      continue;
    }
    merged.Add(std::move(op));
  }
  merged.SetMergedStamps(
      std::vector<std::pair<Xid, Timestamp>>(backward.begin(),
                                             backward.end()),
      std::vector<std::pair<Xid, Timestamp>>(forward.begin(),
                                             forward.end()));
  return merged;
}

StatusOr<VersionedDocument::VacuumOutcome> VersionedDocument::Vacuum(
    const RetentionPolicy& policy) {
  TXML_RETURN_IF_ERROR(ValidateRetentionPolicy(policy));
  VacuumOutcome outcome;
  if (version_count() == 0) return outcome;

  // Resolve the time horizons to retained version numbers. The version
  // valid *at* a horizon answers queries at the horizon, so it is always
  // retained; only strictly older versions are dropped or coarsened.
  VersionNum new_first = first_retained_;
  if (policy.drop_before.has_value()) {
    auto v = delta_index_.VersionAt(*policy.drop_before);
    if (v.has_value()) new_first = std::max(new_first, SnapToRetained(*v));
  }
  VersionNum coarse_limit = 0;  // versions below it get the keep-every filter
  if (policy.coarsen_older_than.has_value()) {
    auto v = delta_index_.VersionAt(*policy.coarsen_older_than);
    if (v.has_value()) coarse_limit = SnapToRetained(*v);
  }
  VersionNum new_dense =
      std::max(dense_floor_, std::max(new_first, coarse_limit));

  // The versions to keep below new_dense, walking the currently retained
  // chain. Versions in [coarse_limit, old dense_floor_) were coarsened by
  // an earlier vacuum and stay as they are.
  const uint32_t k = std::max<uint32_t>(1, policy.keep_every);
  std::vector<VersionNum> kept;
  if (new_dense > new_first) {
    kept.push_back(new_first);
    uint32_t since = 0;
    for (VersionNum v = NextRetained(new_first); v != 0 && v < new_dense;
         v = NextRetained(v)) {
      if (v < coarse_limit) {
        if (++since >= k) {
          kept.push_back(v);
          since = 0;
        }
      } else {
        kept.push_back(v);
        since = 0;
      }
    }
  }

  if (new_first == first_retained_ && new_dense == dense_floor_ &&
      kept == coarse_kept_) {
    return outcome;  // nothing below the horizons to rewrite
  }

  for (VersionNum v = first_retained_; v != 0 && v < new_dense;
       v = NextRetained(v)) {
    ++outcome.versions_dropped;
  }
  outcome.versions_dropped -= static_cast<uint32_t>(kept.size());

  // Materialize the new base snapshot and splice the merged deltas from
  // the *old* chain before touching any member.
  TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> new_base,
                        ReconstructVersion(new_first));
  std::vector<EditScript> new_coarse;
  new_coarse.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    VersionNum to = i + 1 < kept.size() ? kept[i + 1] : new_dense;
    std::vector<EditScript> parts;
    for (VersionNum v = kept[i]; v < to; v = NextRetained(v)) {
      parts.push_back(RetainedTransition(v).Clone());
    }
    if (parts.size() == 1) {
      new_coarse.push_back(std::move(parts[0]));
    } else {
      ++outcome.deltas_merged;
      new_coarse.push_back(MergeEditScripts(std::move(parts)));
    }
  }
  std::vector<EditScript> new_dense_deltas;
  new_dense_deltas.reserve(deltas_.size() - (new_dense - dense_floor_));
  for (size_t i = new_dense - dense_floor_; i < deltas_.size(); ++i) {
    new_dense_deltas.push_back(std::move(deltas_[i]));
  }

  // Commit the rewritten chain.
  for (auto it = snapshots_.begin();
       it != snapshots_.end() && it->first < new_dense;) {
    it = snapshots_.erase(it);
    ++outcome.snapshots_dropped;
  }
  delta_index_.DropBelow(new_first);
  base_ = std::move(new_base);
  first_retained_ = new_first;
  dense_floor_ = new_dense;
  coarse_kept_ = std::move(kept);
  coarse_deltas_ = std::move(new_coarse);
  deltas_ = std::move(new_dense_deltas);
  outcome.changed = true;
  return outcome;
}

StatusOr<VacuumStats> VersionedDocumentStore::Vacuum(
    const RetentionPolicy& policy) {
  TXML_RETURN_IF_ERROR(ValidateRetentionPolicy(policy));
  writes_begun_ = true;
  VacuumStats stats;
  stats.bytes_before = CurrentBytes() + DeltaBytes() + SnapshotBytes();
  for (auto& [id, doc] : by_id_) {
    (void)id;
    ++stats.documents_examined;
    TXML_ASSIGN_OR_RETURN(VersionedDocument::VacuumOutcome outcome,
                          doc->Vacuum(policy));
    if (!outcome.changed) continue;
    ++stats.documents_vacuumed;
    stats.versions_dropped += outcome.versions_dropped;
    stats.snapshots_dropped += outcome.snapshots_dropped;
    stats.deltas_merged += outcome.deltas_merged;
    for (StoreObserver* observer : observers_) {
      observer->OnHistoryVacuumed(*doc);
    }
  }
  stats.bytes_after = CurrentBytes() + DeltaBytes() + SnapshotBytes();
  return stats;
}

}  // namespace txml
