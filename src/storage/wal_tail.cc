#include "src/storage/wal_tail.h"

#include <algorithm>

#include "src/util/logging.h"

namespace txml {
namespace {

// Ring accounting charges each record its variable payload, not the exact
// struct footprint — close enough to bound memory, cheap to compute.
uint64_t RecordBytes(const WalRecord& record) {
  return 32 + record.url.size() + record.payload.size();
}

}  // namespace

WalTailBuffer::WalTailBuffer(Options options) : options_(options) {}

void WalTailBuffer::Push(const WalRecord& record) {
  MutexLock lock(mu_);
  TXML_DCHECK(record.sequence > last_sequence_);
  if (ring_.empty()) {
    // Keep the floor contiguous with the first ring entry so ReadAfter can
    // distinguish "gap before the ring" from "waiting for new records".
    evicted_through_ = std::max(evicted_through_, last_sequence_);
  }
  ring_.push_back(record);
  ring_bytes_ += RecordBytes(record);
  last_sequence_ = record.sequence;
  EvictLocked();
  cv_.SignalAll();
}

void WalTailBuffer::SetFloor(uint64_t sequence) {
  MutexLock lock(mu_);
  evicted_through_ = std::max(evicted_through_, sequence);
  last_sequence_ = std::max(last_sequence_, sequence);
}

void WalTailBuffer::EvictLocked() {
  while (!ring_.empty() && (ring_.size() > options_.max_records ||
                            ring_bytes_ > options_.max_bytes)) {
    ring_bytes_ -= RecordBytes(ring_.front());
    evicted_through_ = ring_.front().sequence;
    ring_.pop_front();
  }
}

WalTailBuffer::ReadResult WalTailBuffer::ReadAfter(uint64_t after,
                                                   uint64_t max_records,
                                                   uint64_t max_bytes,
                                                   int64_t timeout_ms) {
  MutexLock lock(mu_);
  ReadResult result;
  while (true) {
    result.last_sequence = last_sequence_;
    if (after < evicted_through_) {
      // The requested range starts before the ring: serve from disk.
      result.below_floor = true;
      return result;
    }
    uint64_t bytes = 0;
    for (const WalRecord& record : ring_) {
      if (record.sequence <= after) continue;
      if (!result.records.empty() &&
          (result.records.size() >= max_records ||
           bytes + RecordBytes(record) > max_bytes)) {
        break;
      }
      result.records.push_back(record);
      bytes += RecordBytes(record);
    }
    if (!result.records.empty() || closed_) return result;
    if (!cv_.WaitFor(mu_, timeout_ms)) return result;  // heartbeat timeout
  }
}

void WalTailBuffer::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.SignalAll();
}

uint64_t WalTailBuffer::last_sequence() const {
  MutexLock lock(mu_);
  return last_sequence_;
}

uint64_t WalTailBuffer::evicted_through() const {
  MutexLock lock(mu_);
  return evicted_through_;
}

}  // namespace txml
