#ifndef TXML_SRC_STORAGE_STORE_H_
#define TXML_SRC_STORAGE_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/vacuum.h"
#include "src/storage/versioned_document.h"
#include "src/util/logging.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// Notification interface for index maintenance: the store calls observers
/// after every successful version append / document delete, handing them
/// the new current tree and the completed delta of the transition. All
/// indexing strategies of Section 7.2 are built as observers.
///
/// Ordering guarantees (the contract the service layer's concurrency model
/// builds on):
///  * observers are notified *synchronously inside* Put/Delete, after the
///    store's own state (version chain, delta index) is fully updated — an
///    observer may read the store and sees the post-write state;
///  * observers are notified in registration order, one write at a time —
///    the store itself takes no locks, so Put/Delete *and* registration
///    must be externally serialized (single-writer contract; the service
///    layer holds its exclusive commit lock around every write);
///  * a reader that is prevented from running concurrently with Put/Delete
///    (e.g. via the service layer's shared commit lock) therefore never
///    observes a version without its index/cache updates, or vice versa.
class StoreObserver {
 public:
  virtual ~StoreObserver() = default;

  /// A new version was stored. `delta` is null for the first version.
  virtual void OnVersionStored(DocId doc_id, VersionNum version,
                               Timestamp ts, const XmlNode& current,
                               const EditScript* delta) = 0;

  /// The document was deleted at `ts` (its last version was `last`).
  virtual void OnDocumentDeleted(DocId doc_id, VersionNum last,
                                 Timestamp ts) = 0;

  /// The document's history was rewritten by a vacuum (versions below
  /// doc.first_retained() are gone; the coarse zone below
  /// doc.dense_floor() retains only a subset of versions). Observers must
  /// drop or re-anchor anything keyed on vacuumed-away versions. Called
  /// under the same single-writer contract as the other events; default is
  /// a no-op so observers indifferent to retention need no change.
  virtual void OnHistoryVacuumed(const VersionedDocument& doc) {
    (void)doc;
  }
};

/// Configuration for a VersionedDocumentStore.
struct StoreOptions {
  /// Keep a complete snapshot of every k-th version of each document
  /// (0 = pure delta chains, the paper's baseline configuration).
  uint32_t snapshot_every = 0;
};

/// The repository: a catalog of URL-addressed versioned documents. This is
/// the "local storage of documents" / warehouse substrate of Section 3.1;
/// commit timestamps come from the caller (the database façade's commit
/// clock, or crawl times in the warehouse setting).
class VersionedDocumentStore {
 public:
  explicit VersionedDocumentStore(StoreOptions options = {})
      : options_(options) {}

  /// Registers an observer; not owned. Must outlive the store's writes.
  ///
  /// Index-maintaining observers must see *every* write or none, so
  /// registration after writes have begun on this instance CHECK-fails
  /// unless `allow_late` is set. Late registration is reserved for
  /// observers that tolerate a truncated event stream (the service layer's
  /// snapshot cache); a decoded store counts as write-free — the database
  /// façade replays its history into late-attached indexes explicitly.
  /// Like writes, registration is the single writer's job: it must not
  /// race Put/Delete or queries (the observer list is unsynchronized).
  void AddObserver(StoreObserver* observer, bool allow_late = false) {
    TXML_CHECK(allow_late || !writes_begun_);
    observers_.push_back(observer);
  }

  struct PutResult {
    DocId doc_id = 0;
    VersionNum version = 0;
  };

  /// Stores a new version of the document at `url`, creating the document
  /// on first contact. `ts` must exceed every timestamp already recorded
  /// for the document.
  StatusOr<PutResult> Put(const std::string& url,
                          std::unique_ptr<XmlNode> content, Timestamp ts);

  /// Marks the document deleted at `ts` (terminal; see VersionedDocument).
  Status Delete(const std::string& url, Timestamp ts);

  /// Applies the retention policy to every document, notifying observers
  /// (OnHistoryVacuumed) for each document whose history changed. A write
  /// under the single-writer contract — the caller must hold the same
  /// exclusion it holds around Put/Delete. Implemented in vacuum.cc.
  StatusOr<VacuumStats> Vacuum(const RetentionPolicy& policy);

  /// Lookup by URL / id. Null when absent.
  VersionedDocument* FindByUrl(const std::string& url);
  const VersionedDocument* FindByUrl(const std::string& url) const;
  VersionedDocument* FindById(DocId doc_id);
  const VersionedDocument* FindById(DocId doc_id) const;

  /// All documents, in DocId order (stable iteration for scans).
  std::vector<const VersionedDocument*> AllDocuments() const;
  std::vector<VersionedDocument*> AllDocuments();

  size_t document_count() const { return by_id_.size(); }
  const StoreOptions& options() const { return options_; }

  /// Total storage accounting (encoded bytes), for the space experiments.
  size_t CurrentBytes() const;
  size_t DeltaBytes() const;
  size_t SnapshotBytes() const;

  /// Persists the whole store to `<dir>/store.txml` (CRC-framed records)
  /// and reloads it. Observers are not persisted; indexes are rebuilt (or
  /// loaded from their own file) by the database façade on load.
  Status Save(const std::string& dir) const;
  static StatusOr<std::unique_ptr<VersionedDocumentStore>> Load(
      const std::string& dir);

  /// In-memory (de)serialization, used by Save/Load and by the database
  /// façade to fingerprint the store when persisting indexes.
  void EncodeTo(std::string* dst) const;
  static StatusOr<std::unique_ptr<VersionedDocumentStore>> Decode(
      std::string_view data);

 private:
  StoreOptions options_;
  DocId next_doc_id_ = 1;
  std::map<DocId, std::unique_ptr<VersionedDocument>> by_id_;
  std::unordered_map<std::string, VersionedDocument*> by_url_;
  std::vector<StoreObserver*> observers_;
  /// Set by the first Put/Delete on this instance; guards AddObserver.
  bool writes_begun_ = false;
};

}  // namespace txml

#endif  // TXML_SRC_STORAGE_STORE_H_
