#ifndef TXML_SRC_STORAGE_STRATUM_STORE_H_
#define TXML_SRC_STORAGE_STRATUM_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"
#include "src/xml/pattern.h"

namespace txml {

/// The baseline the paper argues against in Section 1: "store all versions
/// of all documents in the database, and use a middleware layer to convert
/// temporal query language statements into conventional statements" — the
/// *stratum* approach of Jensen & Snodgrass [10].
///
/// Every version is stored as a complete tree; there are no deltas, no
/// temporal index, and no persistent element identity. Snapshot and history
/// queries scan the stored versions and run PatternScan directly on the
/// trees. Used by the E5 benchmark as the comparator for both storage size
/// and query cost.
class StratumStore {
 public:
  struct StoredVersion {
    Timestamp ts;
    std::unique_ptr<XmlNode> tree;
  };

  struct StratumDocument {
    DocId doc_id;
    std::string url;
    Timestamp delete_ts = Timestamp::Infinity();
    std::vector<StoredVersion> versions;
  };

  /// Stores one more complete version.
  StatusOr<DocId> Put(const std::string& url, std::unique_ptr<XmlNode> tree,
                      Timestamp ts);

  Status Delete(const std::string& url, Timestamp ts);

  const StratumDocument* Find(const std::string& url) const;

  /// Middleware-style snapshot: linear scan of the version list for the
  /// version valid at t; returns a borrowed tree.
  StatusOr<const XmlNode*> SnapshotAt(const std::string& url,
                                      Timestamp t) const;

  /// Runs a pattern against the snapshot of every document at time t
  /// (the stratum equivalent of TPatternScan). Returns matched elements.
  std::vector<const XmlNode*> ScanSnapshot(const Pattern& pattern,
                                           Timestamp t) const;

  /// Runs a pattern against *all* versions of all documents (the stratum
  /// equivalent of TPatternScanAll): element plus version timestamp.
  struct AllMatch {
    DocId doc_id;
    Timestamp ts;
    const XmlNode* element;
  };
  std::vector<AllMatch> ScanAllVersions(const Pattern& pattern) const;

  /// Total encoded bytes of all stored versions (E5/E7 accounting).
  size_t StorageBytes() const;

  size_t document_count() const { return by_id_.size(); }
  std::vector<const StratumDocument*> AllDocuments() const;

 private:
  DocId next_doc_id_ = 1;
  std::map<DocId, StratumDocument> by_id_;
  std::unordered_map<std::string, DocId> by_url_;
};

}  // namespace txml

#endif  // TXML_SRC_STORAGE_STRATUM_STORE_H_
