#ifndef TXML_SRC_STORAGE_VERSIONED_DOCUMENT_H_
#define TXML_SRC_STORAGE_VERSIONED_DOCUMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/diff/edit_script.h"
#include "src/storage/delta_index.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

struct RetentionPolicy;  // src/storage/vacuum.h

/// One document and its full transaction-time history, stored per the
/// paper's physical model (Section 7.1):
///
///  * the *current* version is stored complete;
///  * previous versions are stored as a chain of *completed deltas*
///    (TransitionDelta(i) turns version i into i+1 forward, i+1 into i
///    backward);
///  * optional periodic *snapshots* (complete intermediate versions) bound
///    the number of deltas a reconstruction must apply (Section 7.3.3);
///  * the per-document delta index maps version numbers to timestamps.
///
/// XIDs are document-scoped and never reused; the embedded XidAllocator is
/// threaded through every diff.
///
/// Deletion is terminal: a deleted document keeps its history (and stays
/// queryable for all t < delete_time()), but accepts no further versions —
/// content reappearing later at the same URL is a new document with new
/// EIDs, which is exactly the Web-warehouse identity caveat of Section 7.4.
class VersionedDocument {
 public:
  /// `snapshot_every` = k keeps a complete copy of every k-th version as a
  /// reconstruction shortcut; 0 disables snapshots (pure delta chain).
  VersionedDocument(DocId doc_id, std::string url, uint32_t snapshot_every);

  DocId doc_id() const { return doc_id_; }
  const std::string& url() const { return url_; }

  VersionNum version_count() const { return delta_index_.version_count(); }
  bool deleted() const { return !delete_ts_.IsInfinite(); }
  Timestamp delete_time() const { return delete_ts_; }

  /// True if the document exists (has a version valid) at time t.
  bool ExistsAt(Timestamp t) const {
    return version_count() > 0 && t >= delta_index_.first_timestamp() &&
           t < delete_ts_;
  }

  const DeltaIndex& delta_index() const { return delta_index_; }
  XidAllocator* xid_allocator() { return &xids_; }
  /// First XID not yet allocated; xids in [1, next_xid) have been used.
  Xid next_xid() const { return xids_.next(); }

  /// The complete stored current version — the *last* version even after
  /// deletion (needed to walk the history backwards). Never null once a
  /// version was appended.
  const XmlNode* current() const { return current_.get(); }

  struct AppendResult {
    VersionNum version = 0;
    /// Delta from the previous version; null for the first version.
    const EditScript* delta = nullptr;
  };

  /// Appends a new version with commit time `ts` (must exceed the last
  /// version's). `content` arrives XID-free (fresh parse); on return it has
  /// become the current version, with XIDs propagated from the previous
  /// version by the differ and timestamps per the data model.
  StatusOr<AppendResult> AppendVersion(std::unique_ptr<XmlNode> content,
                                       Timestamp ts);

  /// Marks the document deleted at `ts`. The last version's validity ends
  /// at `ts`.
  Status MarkDeleted(Timestamp ts);

  /// Validity interval of version v, capped at the delete time.
  TimeInterval VersionValidity(VersionNum v) const;

  /// The completed delta for the transition version `from` -> `from`+1.
  /// Precondition: dense_floor() <= from < version_count().
  const EditScript& TransitionDelta(VersionNum from) const {
    return deltas_[from - dense_floor_];
  }

  // --- Retention state (see src/storage/vacuum.h) ------------------------
  //
  // Vacuuming partitions the version axis into three zones without ever
  // renumbering: versions below first_retained() are gone entirely;
  // [first_retained(), dense_floor()) is the *coarse* zone where only a
  // subset of versions survives, linked by merged deltas; versions at or
  // above dense_floor() keep the original dense delta chain. Unvacuumed
  // documents have first_retained() == dense_floor() == 1 and every
  // version retained, so all retained-walk helpers degrade to the dense
  // behaviour.

  /// Oldest version still reconstructible. 1 unless vacuumed with a drop
  /// horizon.
  VersionNum first_retained() const { return first_retained_; }
  /// First version of the dense (unmerged) tail of the delta chain.
  VersionNum dense_floor() const { return dense_floor_; }
  /// True once the document has been vacuumed (it then owns a materialized
  /// base snapshot of first_retained()).
  bool vacuumed() const { return base_ != nullptr; }
  /// The re-anchored base snapshot (version first_retained()), or null for
  /// an unvacuumed document.
  const XmlNode* base() const { return base_.get(); }

  bool IsRetained(VersionNum v) const;
  /// Largest retained version <= v, or 0 if v precedes first_retained().
  VersionNum SnapToRetained(VersionNum v) const;
  /// Smallest retained version > v, or 0 if v is the last version.
  VersionNum NextRetained(VersionNum v) const;
  /// Largest retained version < v, or 0 if v <= first_retained().
  VersionNum PrevRetained(VersionNum v) const;
  /// True if [start, end) contains at least one retained version.
  bool AnyRetainedIn(VersionNum start, VersionNum end) const;
  /// The delta for the retained transition `from` -> NextRetained(`from`):
  /// the original delta in the dense zone, a merged delta in the coarse
  /// zone. Precondition: IsRetained(from) && from < version_count().
  const EditScript& RetainedTransition(VersionNum from) const;
  /// Validity of retained version v over the *retained* timeline:
  /// [ts(v), ts(NextRetained(v))), capped at the delete time. Equals
  /// VersionValidity(v) in the dense zone.
  TimeInterval RetainedValidity(VersionNum v) const;

  struct VacuumOutcome {
    bool changed = false;
    uint32_t versions_dropped = 0;
    uint32_t snapshots_dropped = 0;
    uint32_t deltas_merged = 0;
  };

  /// Rewrites the history below the policy's horizons (implemented in
  /// vacuum.cc). Answers for any time at or after the horizon are
  /// unchanged; version numbers are never reused or renumbered.
  StatusOr<VacuumOutcome> Vacuum(const RetentionPolicy& policy);

  struct ReconstructStats {
    size_t deltas_applied = 0;
    bool used_snapshot = false;
    /// True when reconstruction walked *forward* from the vacuum base
    /// snapshot instead of backward from the current version.
    bool used_base = false;
    VersionNum base_version = 0;
  };

  /// Materializes version v (the Reconstruct operator's engine,
  /// Section 7.3.3): starts from the nearest complete version at or after v
  /// (the current version or an intermediate snapshot) and applies deltas
  /// backwards.
  StatusOr<std::unique_ptr<XmlNode>> ReconstructVersion(
      VersionNum v, ReconstructStats* stats = nullptr) const;

  /// Materializes the version valid at time t; NotFound if the document
  /// does not exist at t.
  StatusOr<std::unique_ptr<XmlNode>> ReconstructAt(
      Timestamp t, ReconstructStats* stats = nullptr) const;

  /// Snapshot versions currently kept (for tests/benches).
  std::vector<VersionNum> SnapshotVersions() const;

  /// Storage accounting for the space experiments, in encoded bytes.
  size_t CurrentBytes() const;
  size_t DeltaBytes() const;
  size_t SnapshotBytes() const;

  void EncodeTo(std::string* dst) const;
  static StatusOr<std::unique_ptr<VersionedDocument>> Decode(
      std::string_view data);

 private:
  /// Number of retained transitions between retained versions lo <= hi.
  size_t RetainedSteps(VersionNum lo, VersionNum hi) const;

  DocId doc_id_;
  std::string url_;
  uint32_t snapshot_every_;
  XidAllocator xids_;
  Timestamp delete_ts_ = Timestamp::Infinity();
  std::unique_ptr<XmlNode> current_;
  /// deltas_[i] is the transition from version dense_floor_+i to
  /// dense_floor_+i+1 (dense_floor_ is 1 until vacuumed).
  std::vector<EditScript> deltas_;
  DeltaIndex delta_index_;
  /// Periodic complete versions, keyed by version number. Always at
  /// retained versions >= dense_floor_.
  std::map<VersionNum, std::unique_ptr<XmlNode>> snapshots_;

  // Retention state — see the "Retention state" section above and
  // src/storage/vacuum.h. Invariants: first_retained_ <= dense_floor_;
  // coarse_kept_ is ascending, starts with first_retained_, lies entirely
  // below dense_floor_, and is empty iff dense_floor_ == first_retained_;
  // coarse_deltas_.size() == coarse_kept_.size(); base_ is null iff the
  // document was never vacuumed.
  VersionNum first_retained_ = 1;
  VersionNum dense_floor_ = 1;
  std::unique_ptr<XmlNode> base_;
  std::vector<VersionNum> coarse_kept_;
  /// coarse_deltas_[i] merges the original transitions coarse_kept_[i] ->
  /// (coarse_kept_[i+1], or dense_floor_ for the last entry).
  std::vector<EditScript> coarse_deltas_;
};

}  // namespace txml

#endif  // TXML_SRC_STORAGE_VERSIONED_DOCUMENT_H_
