#include "src/storage/store.h"

#include <utility>

#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/env.h"
#include "src/util/macros.h"

namespace txml {
namespace {

constexpr char kStoreFileName[] = "store.txml";
constexpr uint32_t kStoreMagic = 0x544D5831;  // "TMX1"

void AppendFramedRecord(std::string* dst, std::string_view payload) {
  PutVarint64(dst, payload.size());
  dst->append(payload);
  PutFixed32(dst, crc32c::Mask(crc32c::Value(payload)));
}

StatusOr<std::string_view> ReadFramedRecord(Decoder* decoder) {
  auto payload = decoder->ReadLengthPrefixed();
  if (!payload.ok()) return payload.status();
  auto crc = decoder->ReadFixed32();
  if (!crc.ok()) return crc.status();
  if (crc32c::Unmask(*crc) != crc32c::Value(*payload)) {
    return Status::Corruption("record checksum mismatch");
  }
  return *payload;
}

}  // namespace

StatusOr<VersionedDocumentStore::PutResult> VersionedDocumentStore::Put(
    const std::string& url, std::unique_ptr<XmlNode> content, Timestamp ts) {
  writes_begun_ = true;
  VersionedDocument* doc = FindByUrl(url);
  if (doc == nullptr) {
    auto owned = std::make_unique<VersionedDocument>(
        next_doc_id_++, url, options_.snapshot_every);
    doc = owned.get();
    by_id_[doc->doc_id()] = std::move(owned);
    by_url_[url] = doc;
  }
  TXML_ASSIGN_OR_RETURN(VersionedDocument::AppendResult appended,
                        doc->AppendVersion(std::move(content), ts));
  for (StoreObserver* observer : observers_) {
    observer->OnVersionStored(doc->doc_id(), appended.version, ts,
                              *doc->current(), appended.delta);
  }
  return PutResult{doc->doc_id(), appended.version};
}

Status VersionedDocumentStore::Delete(const std::string& url, Timestamp ts) {
  writes_begun_ = true;
  VersionedDocument* doc = FindByUrl(url);
  if (doc == nullptr) {
    return Status::NotFound("no document at '" + url + "'");
  }
  TXML_RETURN_IF_ERROR(doc->MarkDeleted(ts));
  for (StoreObserver* observer : observers_) {
    observer->OnDocumentDeleted(doc->doc_id(), doc->version_count(), ts);
  }
  return Status::OK();
}

VersionedDocument* VersionedDocumentStore::FindByUrl(const std::string& url) {
  auto it = by_url_.find(url);
  return it == by_url_.end() ? nullptr : it->second;
}

const VersionedDocument* VersionedDocumentStore::FindByUrl(
    const std::string& url) const {
  auto it = by_url_.find(url);
  return it == by_url_.end() ? nullptr : it->second;
}

VersionedDocument* VersionedDocumentStore::FindById(DocId doc_id) {
  auto it = by_id_.find(doc_id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

const VersionedDocument* VersionedDocumentStore::FindById(
    DocId doc_id) const {
  auto it = by_id_.find(doc_id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

std::vector<const VersionedDocument*> VersionedDocumentStore::AllDocuments()
    const {
  std::vector<const VersionedDocument*> docs;
  docs.reserve(by_id_.size());
  for (const auto& [id, doc] : by_id_) docs.push_back(doc.get());
  return docs;
}

std::vector<VersionedDocument*> VersionedDocumentStore::AllDocuments() {
  std::vector<VersionedDocument*> docs;
  docs.reserve(by_id_.size());
  for (auto& [id, doc] : by_id_) docs.push_back(doc.get());
  return docs;
}

size_t VersionedDocumentStore::CurrentBytes() const {
  size_t total = 0;
  for (const auto& [id, doc] : by_id_) total += doc->CurrentBytes();
  return total;
}

size_t VersionedDocumentStore::DeltaBytes() const {
  size_t total = 0;
  for (const auto& [id, doc] : by_id_) total += doc->DeltaBytes();
  return total;
}

size_t VersionedDocumentStore::SnapshotBytes() const {
  size_t total = 0;
  for (const auto& [id, doc] : by_id_) total += doc->SnapshotBytes();
  return total;
}

void VersionedDocumentStore::EncodeTo(std::string* dst) const {
  PutFixed32(dst, kStoreMagic);
  PutVarint32(dst, options_.snapshot_every);
  PutVarint32(dst, next_doc_id_);
  PutVarint64(dst, by_id_.size());
  std::string payload;
  for (const auto& [id, doc] : by_id_) {
    payload.clear();
    doc->EncodeTo(&payload);
    AppendFramedRecord(dst, payload);
  }
}

Status VersionedDocumentStore::Save(const std::string& dir) const {
  TXML_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::string out;
  EncodeTo(&out);
  return WriteStringToFile(dir + "/" + kStoreFileName, out);
}

StatusOr<std::unique_ptr<VersionedDocumentStore>>
VersionedDocumentStore::Load(const std::string& dir) {
  TXML_ASSIGN_OR_RETURN(std::string data,
                        ReadFileToString(dir + "/" + kStoreFileName));
  return Decode(data);
}

StatusOr<std::unique_ptr<VersionedDocumentStore>>
VersionedDocumentStore::Decode(std::string_view data) {
  Decoder decoder(data);
  auto magic = decoder.ReadFixed32();
  if (!magic.ok()) return magic.status();
  if (*magic != kStoreMagic) {
    return Status::Corruption("not a txml store file");
  }
  auto snapshot_every = decoder.ReadVarint32();
  if (!snapshot_every.ok()) return snapshot_every.status();
  auto next_doc_id = decoder.ReadVarint32();
  if (!next_doc_id.ok()) return next_doc_id.status();
  auto doc_count = decoder.ReadVarint64();
  if (!doc_count.ok()) return doc_count.status();

  StoreOptions options;
  options.snapshot_every = *snapshot_every;
  auto store = std::make_unique<VersionedDocumentStore>(options);
  store->next_doc_id_ = *next_doc_id;
  for (uint64_t i = 0; i < *doc_count; ++i) {
    auto payload = ReadFramedRecord(&decoder);
    if (!payload.ok()) return payload.status();
    auto doc = VersionedDocument::Decode(*payload);
    if (!doc.ok()) return doc.status();
    VersionedDocument* borrowed = doc->get();
    store->by_id_[borrowed->doc_id()] = std::move(*doc);
    store->by_url_[borrowed->url()] = borrowed;
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes in store file");
  }
  return store;
}

}  // namespace txml
