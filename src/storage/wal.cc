#include "src/storage/wal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "src/storage/wal_tail.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/env.h"
#include "src/util/failpoint.h"

namespace txml {
namespace {

// 'T' 'W' 'L' '1' in file order under the little-endian fixed32 encoding.
constexpr uint32_t kWalMagic = 0x314C5754u;

// Vacuum-record flag bits (which optional horizons are present).
constexpr uint8_t kVacuumHasDropBefore = 0x1;
constexpr uint8_t kVacuumHasCoarsen = 0x2;

std::string ErrnoDetail(const char* op, const std::string& path, int err) {
  return std::string(op) + " '" + path + "' failed: " + std::strerror(err) +
         " (errno " + std::to_string(err) + ")";
}

std::string EncodeHeader(uint64_t base_sequence) {
  std::string header;
  PutFixed32(&header, kWalMagic);
  PutVarint64(&header, base_sequence);
  return header;
}

}  // namespace

// Body layout per record type (after the common `varint32 type, varint64
// sequence` prefix):
//   kPut:    varint_signed64 ts_micros, lp url, lp payload
//   kDelete: varint_signed64 ts_micros, lp url
//   kVacuum: varint32 flags, [varint_signed64 drop_before],
//            [varint_signed64 coarsen_older_than], varint32 keep_every
std::string EncodeWalRecordBody(const WalRecord& record, uint64_t sequence) {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(record.type));
  PutVarint64(&body, sequence);
  switch (record.type) {
    case WalRecordType::kPut:
      PutVarintSigned64(&body, record.ts.micros());
      PutLengthPrefixed(&body, record.url);
      PutLengthPrefixed(&body, record.payload);
      break;
    case WalRecordType::kDelete:
      PutVarintSigned64(&body, record.ts.micros());
      PutLengthPrefixed(&body, record.url);
      break;
    case WalRecordType::kVacuum: {
      uint8_t flags = 0;
      if (record.policy.drop_before.has_value()) flags |= kVacuumHasDropBefore;
      if (record.policy.coarsen_older_than.has_value()) {
        flags |= kVacuumHasCoarsen;
      }
      PutVarint32(&body, flags);
      if (record.policy.drop_before.has_value()) {
        PutVarintSigned64(&body, record.policy.drop_before->micros());
      }
      if (record.policy.coarsen_older_than.has_value()) {
        PutVarintSigned64(&body, record.policy.coarsen_older_than->micros());
      }
      PutVarint32(&body, record.policy.keep_every);
      break;
    }
  }
  return body;
}

StatusOr<WalRecord> DecodeWalRecordBody(std::string_view body) {
  Decoder dec(body);
  WalRecord record;
  auto type = dec.ReadVarint32();
  if (!type.ok()) return type.status();
  switch (*type) {
    case static_cast<uint32_t>(WalRecordType::kPut):
      record.type = WalRecordType::kPut;
      break;
    case static_cast<uint32_t>(WalRecordType::kDelete):
      record.type = WalRecordType::kDelete;
      break;
    case static_cast<uint32_t>(WalRecordType::kVacuum):
      record.type = WalRecordType::kVacuum;
      break;
    default:
      return Status::Corruption("wal record has unknown type " +
                                std::to_string(*type));
  }
  auto sequence = dec.ReadVarint64();
  if (!sequence.ok()) return sequence.status();
  record.sequence = *sequence;
  switch (record.type) {
    case WalRecordType::kPut: {
      auto ts = dec.ReadVarintSigned64();
      if (!ts.ok()) return ts.status();
      record.ts = Timestamp::FromMicros(*ts);
      auto url = dec.ReadLengthPrefixed();
      if (!url.ok()) return url.status();
      record.url = std::string(*url);
      auto payload = dec.ReadLengthPrefixed();
      if (!payload.ok()) return payload.status();
      record.payload = std::string(*payload);
      break;
    }
    case WalRecordType::kDelete: {
      auto ts = dec.ReadVarintSigned64();
      if (!ts.ok()) return ts.status();
      record.ts = Timestamp::FromMicros(*ts);
      auto url = dec.ReadLengthPrefixed();
      if (!url.ok()) return url.status();
      record.url = std::string(*url);
      break;
    }
    case WalRecordType::kVacuum: {
      auto flags = dec.ReadVarint32();
      if (!flags.ok()) return flags.status();
      if (*flags & kVacuumHasDropBefore) {
        auto t = dec.ReadVarintSigned64();
        if (!t.ok()) return t.status();
        record.policy.drop_before = Timestamp::FromMicros(*t);
      }
      if (*flags & kVacuumHasCoarsen) {
        auto t = dec.ReadVarintSigned64();
        if (!t.ok()) return t.status();
        record.policy.coarsen_older_than = Timestamp::FromMicros(*t);
      }
      auto keep = dec.ReadVarint32();
      if (!keep.ok()) return keep.status();
      record.policy.keep_every = *keep;
      break;
    }
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("wal record body has trailing bytes");
  }
  return record;
}

namespace {

// Scans `data` (the whole file) and fills `result` with every complete,
// CRC-valid record. Returns Corruption only when even the header is
// unreadable; a bad *suffix* is reported via tail_dropped instead.
Status ScanLog(std::string_view data, const std::string& path,
               WriteAheadLog::ReplayResult* result) {
  Decoder dec(data);
  auto magic = dec.ReadFixed32();
  if (!magic.ok() || *magic != kWalMagic) {
    return Status::Corruption("'" + path + "' is not a WAL file (bad magic)");
  }
  auto base = dec.ReadVarint64();
  if (!base.ok()) {
    return Status::Corruption("'" + path + "' has a truncated WAL header");
  }
  result->base_sequence = *base;
  result->last_sequence = *base;
  size_t pos = dec.position();
  result->valid_bytes = pos;
  while (pos < data.size()) {
    Decoder frame(data.substr(pos));
    auto len = frame.ReadVarint64();
    if (!len.ok()) break;  // torn length varint
    size_t body_off = pos + frame.position();
    if (*len > data.size() - body_off) break;  // torn body
    size_t body_len = static_cast<size_t>(*len);
    if (data.size() - body_off - body_len < 4) break;  // torn crc
    std::string_view body = data.substr(body_off, body_len);
    Decoder crc_dec(data.substr(body_off + body_len, 4));
    auto stored_crc = crc_dec.ReadFixed32();
    if (!stored_crc.ok()) break;
    if (crc32c::Unmask(*stored_crc) != crc32c::Value(body)) break;
    // A CRC-valid body that fails to decode is real corruption, not a torn
    // tail — the bytes were durably written this way. Still treat it as the
    // end of the trustworthy prefix rather than failing recovery outright.
    auto record = DecodeWalRecordBody(body);
    if (!record.ok()) break;
    result->records.push_back(std::move(*record));
    result->last_sequence = result->records.back().sequence;
    pos = body_off + body_len + 4;
    result->valid_bytes = pos;
  }
  if (result->valid_bytes < data.size()) {
    result->tail_dropped = true;
    result->bytes_dropped = data.size() - result->valid_bytes;
  }
  return Status::OK();
}

}  // namespace

std::string_view WalSyncModeToString(WalSyncMode mode) {
  switch (mode) {
    case WalSyncMode::kNone:
      return "none";
    case WalSyncMode::kEveryN:
      return "every_n";
    case WalSyncMode::kAlways:
      return "always";
  }
  return "unknown";
}

StatusOr<WalSyncMode> ParseWalSyncMode(std::string_view text) {
  if (text == "none") return WalSyncMode::kNone;
  if (text == "every_n") return WalSyncMode::kEveryN;
  if (text == "always") return WalSyncMode::kAlways;
  return Status::InvalidArgument(
      "unknown sync mode '" + std::string(text) +
      "' (expected none, every_n, or always)");
}

WriteAheadLog::WriteAheadLog(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    std::string path, WalOptions options, uint64_t min_base_sequence) {
  if (options.sync_mode == WalSyncMode::kEveryN && options.sync_every_n == 0) {
    return Status::InvalidArgument("sync_every_n must be > 0");
  }
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), options));
  bool fresh = !FileExists(log->path_);
  if (fresh) {
    // Durably create the header-only file before the first append can be
    // acknowledged.
    Status created =
        WriteStringToFile(log->path_, EncodeHeader(min_base_sequence));
    if (!created.ok()) return created;
    log->last_sequence_ = min_base_sequence;
    log->file_bytes_ = EncodeHeader(min_base_sequence).size();
  } else {
    auto replay = Replay(log->path_);
    if (!replay.ok()) return replay.status();
    log->last_sequence_ = std::max(replay->last_sequence, min_base_sequence);
    log->record_count_ = replay->records.size();
    log->file_bytes_ = replay->valid_bytes;
    if (replay->tail_dropped) {
      // Physically drop the torn suffix so new appends extend the valid
      // prefix; otherwise replay would stop before them.
      if (::truncate(log->path_.c_str(),
                     static_cast<off_t>(replay->valid_bytes)) != 0) {
        return Status::IoError(
            ErrnoDetail("truncate (torn tail)", log->path_, errno));
      }
    }
  }
  if (FailPointError("wal.open", log->path_)) {
    return Status::IoError("injected failure at wal.open for '" + log->path_ +
                           "'");
  }
  int fd = ::open(log->path_.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::IoError(ErrnoDetail("open", log->path_, errno));
  }
  log->fd_ = fd;
  return log;
}

StatusOr<uint64_t> WriteAheadLog::Append(const WalRecord& record) {
  if (poisoned_) {
    return Status::Unavailable(
        "wal '" + path_ +
        "' is poisoned after a failed sync/rollback; restart to recover");
  }
  return AppendWithSequence(record, last_sequence_ + 1);
}

StatusOr<uint64_t> WriteAheadLog::AppendReplicated(const WalRecord& record) {
  if (poisoned_) {
    return Status::Unavailable(
        "wal '" + path_ +
        "' is poisoned after a failed sync/rollback; restart to recover");
  }
  if (record.sequence <= last_sequence_) {
    return Status::InvalidArgument(
        "replicated record sequence " + std::to_string(record.sequence) +
        " does not advance past " + std::to_string(last_sequence_));
  }
  return AppendWithSequence(record, record.sequence);
}

StatusOr<uint64_t> WriteAheadLog::AppendWithSequence(const WalRecord& record,
                                                     uint64_t sequence) {
  std::string body = EncodeWalRecordBody(record, sequence);
  std::string framed;
  PutVarint64(&framed, body.size());
  framed.append(body);
  PutFixed32(&framed, crc32c::Mask(crc32c::Value(body)));

  Status written = WriteFramed(framed);
  if (!written.ok()) return written;
  file_bytes_ += framed.size();
  ++record_count_;
  last_sequence_ = sequence;
  ++unsynced_records_;

  bool want_sync =
      options_.sync_mode == WalSyncMode::kAlways ||
      (options_.sync_mode == WalSyncMode::kEveryN &&
       unsynced_records_ >= options_.sync_every_n);
  if (want_sync) {
    Status synced = SyncLocked();
    if (!synced.ok()) return synced;
  }
  return sequence;
}

Status WriteAheadLog::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::OK();
  if (poisoned_) {
    return Status::Unavailable(
        "wal '" + path_ +
        "' is poisoned after a failed sync/rollback; restart to recover");
  }
  uint64_t prev = last_sequence_;
  std::string framed;
  for (const WalRecord& record : records) {
    if (record.sequence <= prev) {
      return Status::InvalidArgument(
          "batch record sequence " + std::to_string(record.sequence) +
          " does not advance past " + std::to_string(prev));
    }
    prev = record.sequence;
    std::string body = EncodeWalRecordBody(record, record.sequence);
    PutVarint64(&framed, body.size());
    framed.append(body);
    PutFixed32(&framed, crc32c::Mask(crc32c::Value(body)));
  }

  Status written = WriteFramed(framed);
  if (!written.ok()) return written;
  file_bytes_ += framed.size();
  record_count_ += records.size();
  last_sequence_ = prev;
  unsynced_records_ += records.size();

  bool want_sync =
      options_.sync_mode == WalSyncMode::kAlways ||
      (options_.sync_mode == WalSyncMode::kEveryN &&
       unsynced_records_ >= options_.sync_every_n);
  if (want_sync) return SyncLocked();
  return Status::OK();
}

Status WriteAheadLog::WriteFramed(std::string_view framed) {
  std::string_view to_write = framed;
  size_t injected_allowed = 0;
  bool injected =
      FailPointShortWrite("wal.append.write", path_, &injected_allowed);
  if (injected) to_write = to_write.substr(0, injected_allowed);

  size_t off = 0;
  int write_errno = 0;
  while (off < to_write.size()) {
    ssize_t n = ::write(fd_, to_write.data() + off, to_write.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_errno = errno;
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (injected || write_errno != 0) {
    // Roll the partial append back so the on-disk file ends on a record
    // boundary; a failed rollback leaves an untrusted tail → poison.
    if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
      poisoned_ = true;
      return Status::IoError(
          ErrnoDetail("ftruncate (append rollback)", path_, errno) +
          "; wal poisoned");
    }
    if (injected) {
      return Status::IoError("injected failure at wal.append.write for '" +
                             path_ + "'");
    }
    return Status::IoError(ErrnoDetail("write", path_, write_errno));
  }
  return Status::OK();
}

Status WriteAheadLog::SyncLocked() {
  if (FailPointError("wal.append.sync", path_)) {
    // The record may or may not be durable — same ambiguity as a real
    // fsync failure, so poison rather than guess.
    poisoned_ = true;
    return Status::IoError("injected failure at wal.append.sync for '" +
                           path_ + "'; wal poisoned");
  }
  if (::fsync(fd_) != 0) {
    // Post-fsync-failure page state is undefined on Linux (dirty pages may
    // be dropped); no later fsync can re-establish durability of this fd's
    // writes. Poison and force recovery from the on-disk truth.
    poisoned_ = true;
    return Status::IoError(ErrnoDetail("fsync", path_, errno) +
                           "; wal poisoned");
  }
  unsynced_records_ = 0;
  ++sync_count_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (poisoned_) {
    return Status::Unavailable("wal '" + path_ + "' is poisoned");
  }
  if (unsynced_records_ == 0) return Status::OK();
  return SyncLocked();
}

Status WriteAheadLog::Reset(uint64_t base_sequence) {
  // Build the replacement first; only swap our fd after the rename landed.
  Status replaced = WriteStringToFile(path_, EncodeHeader(base_sequence));
  if (!replaced.ok()) return replaced;
  int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    // The file on disk is the fresh header, but we cannot append to it;
    // poison so callers stop acknowledging writes.
    poisoned_ = true;
    return Status::IoError(ErrnoDetail("open (reset)", path_, errno) +
                           "; wal poisoned");
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  last_sequence_ = std::max(last_sequence_, base_sequence);
  file_bytes_ = EncodeHeader(base_sequence).size();
  record_count_ = 0;
  unsynced_records_ = 0;
  poisoned_ = false;
  return Status::OK();
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  ReplayResult result;
  if (!FileExists(path)) return result;
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  Status scanned = ScanLog(*data, path, &result);
  if (!scanned.ok()) return scanned;
  return result;
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::ReplayData(
    std::string_view data) {
  ReplayResult result;
  Status scanned = ScanLog(data, "<memory>", &result);
  if (!scanned.ok()) return scanned;
  return result;
}

namespace {

// GroupCommitStats histogram bucket for a batch of `n` records: 0 → size
// 1, 1 → 2, 2 → 3-4, 3 → 5-8, …, last bucket → everything larger.
size_t BatchHistogramBucket(size_t n) {
  size_t bucket = 0;
  size_t bound = 1;
  while (bucket + 1 < GroupCommitStats::kHistogramBuckets && n > bound) {
    ++bucket;
    bound <<= 1;
  }
  return bucket;
}

}  // namespace

GroupCommitWal::GroupCommitWal(std::unique_ptr<WriteAheadLog> wal, Hooks hooks)
    : wal_(std::move(wal)), hooks_(std::move(hooks)) {
  {
    MutexLock lock(mu_);
    submitted_watermark_ = wal_->last_sequence();
    MirrorGauges();
  }
  writer_ = Thread([this] { WriterLoop(); });
}

GroupCommitWal::~GroupCommitWal() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    queue_cv_.Signal();
  }
  writer_.Join();
}

void GroupCommitWal::EnqueueLocked(const WalRecord& record, Ticket* ticket) {
  if (stopping_) {
    ticket->result_ = Status::Unavailable("group-commit wal is shutting down");
    ticket->done_ = true;
    return;
  }
  if (poisoned_.load(std::memory_order_relaxed)) {
    ticket->result_ = Status::Unavailable(
        "wal '" + wal_->path() + "' is poisoned; restart to recover");
    ticket->done_ = true;
    return;
  }
  if (record.sequence <= submitted_watermark_) {
    ticket->result_ = Status::InvalidArgument(
        "group-commit record sequence " + std::to_string(record.sequence) +
        " does not advance past " + std::to_string(submitted_watermark_));
    ticket->done_ = true;
    return;
  }
  submitted_watermark_ = record.sequence;
  queue_.push_back(Pending{record, ticket});
}

void GroupCommitWal::Enqueue(const WalRecord& record, Ticket* ticket) {
  MutexLock lock(mu_);
  EnqueueLocked(record, ticket);
  SignalWriterLocked();
}

void GroupCommitWal::EnqueueRun(const std::vector<WalRecord>& records,
                                const std::vector<Ticket*>& tickets) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < records.size(); ++i) {
    EnqueueLocked(records[i], tickets[i]);
  }
  SignalWriterLocked();
}

void GroupCommitWal::SignalWriterLocked() {
  // While the writer is holding a batch open (the formation window), a
  // wake-per-enqueue is a context switch per record for nothing — it
  // would just re-check and sleep again. Wake it early only when the
  // queue now covers every commit in flight (nobody left to wait for);
  // otherwise its deadline timeout closes the batch.
  if (forming_ &&
      queue_.size() < hooks_.commits_in_flight()) {
    return;
  }
  queue_cv_.Signal();
}

Status GroupCommitWal::Wait(Ticket* ticket) {
  MutexLock lock(mu_);
  while (!ticket->done_) ack_cv_.Wait(mu_);
  return ticket->result_;
}

Status GroupCommitWal::Append(const WalRecord& record) {
  Ticket ticket;
  Enqueue(record, &ticket);
  return Wait(&ticket);
}

Status GroupCommitWal::Flush() {
  MutexLock lock(mu_);
  while (!queue_.empty() || writing_) ack_cv_.Wait(mu_);
  // The writer is parked (it needs mu_ to start another batch), so the
  // log is safe to touch directly.
  Status synced = wal_->Sync();
  MirrorGauges();
  return synced;
}

Status GroupCommitWal::Reset(uint64_t base_sequence) {
  MutexLock lock(mu_);
  while (!queue_.empty() || writing_) ack_cv_.Wait(mu_);
  Status reset = wal_->Reset(base_sequence);
  if (reset.ok()) {
    submitted_watermark_ = std::max(submitted_watermark_, base_sequence);
  }
  MirrorGauges();
  return reset;
}

GroupCommitStats GroupCommitWal::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void GroupCommitWal::MirrorGauges() {
  // Release on last_sequence_ pairs with the acquire load in the
  // accessor: a reader that observes the new sequence also observes the
  // batch's effects.
  file_bytes_.store(wal_->file_bytes(), std::memory_order_relaxed);
  record_count_.store(wal_->record_count(), std::memory_order_relaxed);
  sync_count_.store(wal_->sync_count(), std::memory_order_relaxed);
  poisoned_.store(wal_->poisoned(), std::memory_order_relaxed);
  last_sequence_.store(wal_->last_sequence(), std::memory_order_release);
}

void GroupCommitWal::WriterLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) queue_cv_.Wait(mu_);
      if (queue_.empty() && stopping_) return;
      // Batch formation (WalOptions::group_commit_window_us): while more
      // commits are inside the commit path than are queued — committers
      // mid-apply whose next records are moments away — hold the batch
      // open so they share this write and its sync, instead of paying one
      // sync each across several small batches. Bounded by the window; a
      // lone committer never waits (queue covers the in-flight count).
      const int64_t window_us =
          hooks_.commits_in_flight ? wal_->options().group_commit_window_us
                                   : 0;
      if (window_us > 0) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(window_us);
        forming_ = true;
        while (!stopping_ &&
               queue_.size() < hooks_.commits_in_flight()) {
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) break;
          const int64_t remaining_us =
              std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                    now)
                  .count();
          queue_cv_.WaitForMicros(mu_, std::max<int64_t>(remaining_us, 1));
        }
        forming_ = false;
      }
      batch.assign(queue_.begin(), queue_.end());
      queue_.clear();
      if (stopping_) {
        // Drain-on-shutdown: nothing may be written anymore; fail the
        // stragglers (by contract nobody is waiting — see ~GroupCommitWal).
        for (Pending& pending : batch) {
          pending.ticket->result_ =
              Status::Unavailable("group-commit wal is shutting down");
          pending.ticket->done_ = true;
        }
        ack_cv_.SignalAll();
        return;
      }
      writing_ = true;
    }

    std::vector<WalRecord> records;
    records.reserve(batch.size());
    for (Pending& pending : batch) records.push_back(pending.record);
    Status appended = wal_->AppendBatch(records);

    if (appended.ok() && hooks_.tail != nullptr) {
      // Post-sync-decision push: a follower can only ever see records the
      // leader acknowledged (durable in kAlways mode).
      for (const WalRecord& record : records) hooks_.tail->Push(record);
    }

    {
      MutexLock lock(mu_);
      writing_ = false;
      MirrorGauges();
      if (appended.ok()) {
        ++stats_.batches_written;
        stats_.records_written += records.size();
        stats_.syncs = wal_->sync_count();
        stats_.max_batch_records =
            std::max<uint64_t>(stats_.max_batch_records, records.size());
        ++stats_.batch_size_histogram[BatchHistogramBucket(records.size())];
      }
      for (Pending& pending : batch) {
        pending.ticket->result_ = appended;
        pending.ticket->done_ = true;
      }
      ack_cv_.SignalAll();
    }
  }
}

Status WriteCheckpointStamp(const std::string& dir, uint64_t sequence) {
  std::string body;
  PutFixed32(&body, kWalMagic);
  PutVarint64(&body, sequence);
  std::string framed = body;
  PutFixed32(&framed, crc32c::Mask(crc32c::Value(body)));
  return WriteStringToFile(dir + "/" + kCheckpointStampFileName, framed);
}

StatusOr<uint64_t> ReadCheckpointStamp(const std::string& dir) {
  std::string path = dir + "/" + kCheckpointStampFileName;
  if (!FileExists(path)) {
    return Status::NotFound("no checkpoint stamp in '" + dir + "'");
  }
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  if (data->size() < 4) {
    return Status::Corruption("checkpoint stamp '" + path + "' too short");
  }
  std::string_view body(*data);
  body.remove_suffix(4);
  Decoder crc_dec(std::string_view(*data).substr(body.size()));
  auto stored_crc = crc_dec.ReadFixed32();
  if (!stored_crc.ok() ||
      crc32c::Unmask(*stored_crc) != crc32c::Value(body)) {
    return Status::Corruption("checkpoint stamp '" + path +
                              "' fails its checksum");
  }
  Decoder dec(body);
  auto magic = dec.ReadFixed32();
  if (!magic.ok() || *magic != kWalMagic) {
    return Status::Corruption("checkpoint stamp '" + path + "' has bad magic");
  }
  auto sequence = dec.ReadVarint64();
  if (!sequence.ok()) return sequence.status();
  return *sequence;
}

}  // namespace txml
