#ifndef TXML_SRC_STORAGE_VACUUM_H_
#define TXML_SRC_STORAGE_VACUUM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/diff/edit_script.h"
#include "src/util/status.h"
#include "src/util/timestamp.h"

namespace txml {

/// Retention policy for the vacuum subsystem (the usefulness-based
/// version-management trade-off of Chien et al., applied to the paper's
/// delta-chain storage model of Section 7.1).
///
/// Both horizons translate a time T to the version valid *at* T, which is
/// always retained — so every answer for t >= T is unchanged by the
/// vacuum. Version numbers are never reused or renumbered, preserving
/// EID/TEID semantics and the (DocId, version) snapshot-cache key
/// contract.
struct RetentionPolicy {
  /// Drop versions whose validity ends at or before T entirely: the
  /// document's history starts at the version valid at T, which becomes
  /// the re-anchored base snapshot. Queries before its timestamp answer
  /// NotFound, as if the document did not exist yet.
  std::optional<Timestamp> drop_before;

  /// Coarsen versions older than T: below the version valid at T, keep
  /// only every keep_every-th retained version, splicing the dropped
  /// versions' deltas into merged deltas. Queries below T still answer,
  /// but see the nearest retained version at or before the requested time.
  std::optional<Timestamp> coarsen_older_than;
  /// Coarsening step (>= 1). 1 keeps every version (no-op coarsening).
  uint32_t keep_every = 8;

  static RetentionPolicy DropBefore(Timestamp t) {
    RetentionPolicy policy;
    policy.drop_before = t;
    return policy;
  }
  static RetentionPolicy CoarsenOlderThan(Timestamp t, uint32_t k) {
    RetentionPolicy policy;
    policy.coarsen_older_than = t;
    policy.keep_every = k;
    return policy;
  }
};

/// InvalidArgument unless the policy names at least one horizon and
/// keep_every >= 1.
Status ValidateRetentionPolicy(const RetentionPolicy& policy);

/// Aggregate result of VersionedDocumentStore::Vacuum.
struct VacuumStats {
  size_t documents_examined = 0;
  size_t documents_vacuumed = 0;
  uint64_t versions_dropped = 0;
  uint64_t snapshots_dropped = 0;
  /// Number of merged deltas produced (each splices >= 2 originals).
  uint64_t deltas_merged = 0;
  /// Store bytes (current + deltas + snapshots + bases) before/after.
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;

  int64_t ReclaimedBytes() const {
    return static_cast<int64_t>(bytes_before) -
           static_cast<int64_t>(bytes_after);
  }
};

/// Splices consecutive completed deltas into one completed delta: applying
/// the result forward/backward is equivalent to applying every part in
/// order / in reverse. Parts must be the transitions of *consecutive*
/// retained version ranges of one document (so XIDs line up); parts may
/// themselves be merged deltas from an earlier vacuum.
///
/// The merge never re-diffs materialized versions (the matcher's
/// heuristics could assign different XIDs than history did); it
/// concatenates the parts' op lists, coalescing only the position-
/// independent op kinds (update/rename per target), and splits the
/// timestamp bookkeeping into explicit backward/forward stamp lists
/// (EditScript::SetMergedStamps).
///
/// Exposed for tests; precondition: parts is non-empty.
EditScript MergeEditScripts(std::vector<EditScript> parts);

}  // namespace txml

#endif  // TXML_SRC_STORAGE_VACUUM_H_
