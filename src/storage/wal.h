#ifndef TXML_SRC_STORAGE_WAL_H_
#define TXML_SRC_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/vacuum.h"
#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/util/synchronization.h"
#include "src/util/thread.h"
#include "src/util/thread_annotations.h"
#include "src/util/timestamp.h"

namespace txml {

/// The write-ahead commit log (DESIGN.md §9): an append-only file of
/// CRC32C-framed, length-prefixed *logical* commit records. A record
/// describes a commit the way the service API received it — Put as
/// (url, xml text, commit timestamp), Delete as (url, timestamp), Vacuum
/// as the retention policy — not as physical page/delta images: replaying
/// a record through the normal write path is deterministic (same parse,
/// same diff, same XID assignment), so checkpoint + replay reconstructs
/// the exact pre-crash store. The same (url, delta, timestamp) stream is
/// the replication feed the ROADMAP's read-replica item needs.
///
/// File layout (all little-endian, src/util/coding.h primitives):
///
///   header:  fixed32 magic "TWL1", varint64 base_sequence
///   record*: varint64 body_len, byte[body_len] body,
///            fixed32 masked_crc32c(body)
///   body:    varint32 type, varint64 sequence, then per type (see wal.cc)
///
/// Sequences are assigned by Append, strictly increasing, continuing
/// across reopen and across Reset (the post-checkpoint truncation writes
/// the covered sequence into the new header as base_sequence).
///
/// Torn-tail tolerance: a crash mid-append leaves a truncated or
/// CRC-failing suffix. Replay drops that suffix (reporting it) and keeps
/// everything before it; Open physically truncates the file back to the
/// last complete record so new appends land on a clean boundary.

enum class WalSyncMode {
  /// Never fsync; the OS flushes when it likes. Fastest, loses the tail
  /// of acknowledged commits on power loss (not on process crash).
  kNone = 0,
  /// Group commit: fsync once every sync_every_n appended records.
  kEveryN = 1,
  /// fsync every append before acknowledging. The default: an
  /// acknowledged commit survives power loss.
  kAlways = 2,
};

/// Renders "none" / "every_n" / "always".
std::string_view WalSyncModeToString(WalSyncMode mode);
/// Parses the --sync-mode flag vocabulary ("none", "every_n", "always").
StatusOr<WalSyncMode> ParseWalSyncMode(std::string_view text);

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kAlways;
  /// kEveryN: fsync once per this many appended records. Must be > 0.
  uint64_t sync_every_n = 8;
  /// Group commit batch-formation window (GroupCommitWal only): when the
  /// commits-in-flight hook reports more committers inside the commit
  /// path than records queued, the log-writer thread holds the batch open
  /// up to this long so their records join the same write + fsync. A lone
  /// writer never waits (its record is the only commit in flight, so the
  /// queue already covers the in-flight count) — the window costs nothing
  /// at concurrency 1 and amortizes the sync at concurrency N. 0 disables
  /// the wait (sync as soon as anything is queued).
  int64_t group_commit_window_us = 250;
};

enum class WalRecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kVacuum = 3,
};

/// One logical commit record.
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  /// Assigned by Append; read back by Replay.
  uint64_t sequence = 0;
  /// Commit timestamp (kPut / kDelete; unused for kVacuum).
  Timestamp ts;
  /// Document URL (kPut / kDelete).
  std::string url;
  /// kPut: the XML text exactly as the service received it.
  std::string payload;
  /// kVacuum: the retention horizons.
  RetentionPolicy policy;
};

/// Encodes a record body exactly as it appears between the length prefix
/// and the CRC inside the log file — `varint32 type, varint64 sequence`,
/// then per-type fields. The replication protocol ships these bodies
/// verbatim inside batch frames, so leader and follower agree on the
/// byte-level record format by construction.
std::string EncodeWalRecordBody(const WalRecord& record, uint64_t sequence);
/// Inverse of EncodeWalRecordBody. Returns Corruption (never crashes) on
/// malformed input; fuzzed via the wire decode harness.
StatusOr<WalRecord> DecodeWalRecordBody(std::string_view body);

class WriteAheadLog {
 public:
  /// Opens the log at `path` for appending, creating it (with
  /// base_sequence = min_base_sequence) when absent. An existing file is
  /// scanned: a torn tail is physically truncated away, and appends
  /// continue after the last complete record. `min_base_sequence` guards
  /// sequence monotonicity across a crash window where the checkpoint
  /// stamp advanced but log truncation did not happen (or the log file is
  /// gone): assigned sequences always exceed both the file's last record
  /// and this floor.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      std::string path, WalOptions options, uint64_t min_base_sequence = 0);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends `record` (its sequence field is ignored; the next sequence is
  /// assigned and returned) and applies the sync policy. On a write
  /// failure the partial append is rolled back (ftruncate to the
  /// pre-append length) so the file stays clean; if the rollback itself
  /// fails, or an fsync fails (after which the kernel may have dropped
  /// dirty pages — the file's durable content is unknowable), the log is
  /// *poisoned*: every further Append fails kUnavailable until the
  /// process restarts and recovery re-establishes a trusted tail.
  StatusOr<uint64_t> Append(const WalRecord& record);

  /// Appends a record shipped from a replication leader, *preserving* its
  /// sequence number so the follower's log lives in the leader's sequence
  /// space (recovery and ack bookkeeping then need no translation). The
  /// record's sequence must exceed last_sequence(); gaps are fine (the
  /// leader skips sequences for commits its idempotence guards elided).
  /// Same durability/poisoning semantics as Append.
  StatusOr<uint64_t> AppendReplicated(const WalRecord& record);

  /// Group commit: appends `records` — each carrying a caller-assigned
  /// sequence, strictly ascending and above last_sequence() — as ONE
  /// write() followed by at most one sync decision for the whole batch
  /// (kAlways: one fsync covers every record; kEveryN counts the batch
  /// against its budget; kNone never syncs). The frame bytes on disk are
  /// identical to `records.size()` individual Appends — replay and
  /// replication cannot tell a batch from a run of singles. All-or-
  /// nothing: a write failure rolls the whole batch back (ftruncate), a
  /// rollback or fsync failure poisons, exactly as Append.
  Status AppendBatch(const std::vector<WalRecord>& records);

  /// Explicit group-commit flush (kNone/kEveryN callers before an ack
  /// barrier). No-op when nothing is unsynced.
  Status Sync();

  /// Atomically replaces the log with a fresh empty one whose appends
  /// continue from base_sequence + 1 — the truncation after a checkpoint
  /// covering base_sequence. base_sequence may exceed last_sequence():
  /// a checkpoint re-seed (DESIGN.md §14) installs a leader image ahead
  /// of everything this log holds and forwards the cursor to it. On
  /// failure the old log (still containing everything) remains in use;
  /// replay tolerates the stale records via the sequence floor.
  Status Reset(uint64_t base_sequence);

  uint64_t last_sequence() const { return last_sequence_; }
  /// Current file length in bytes (header + records) — the size trigger
  /// for auto-checkpointing.
  uint64_t file_bytes() const { return file_bytes_; }
  /// Complete records currently in the file.
  uint64_t record_count() const { return record_count_; }
  /// Successful fsync calls over the log's lifetime. With group commit the
  /// interesting ratio is sync_count() / record_count(): far below 1 in
  /// kAlways mode under concurrency is the amortization working.
  uint64_t sync_count() const { return sync_count_; }
  bool poisoned() const { return poisoned_; }
  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

  struct ReplayResult {
    std::vector<WalRecord> records;
    /// The header's base_sequence: every record in the file has a sequence
    /// above it. A replication subscriber asking for records at or below
    /// this floor must be re-seeded from a checkpoint instead.
    uint64_t base_sequence = 0;
    /// max(header base_sequence, last record's sequence).
    uint64_t last_sequence = 0;
    /// True when a truncated or CRC-failing suffix was dropped.
    bool tail_dropped = false;
    uint64_t bytes_dropped = 0;
    /// Bytes of header + complete records.
    uint64_t valid_bytes = 0;
  };

  /// Reads the log for recovery. An absent file yields an empty result
  /// (last_sequence 0). A torn tail is dropped and reported; a file too
  /// corrupt to even carry a header is Corruption.
  static StatusOr<ReplayResult> Replay(const std::string& path);

  /// Scans an in-memory image of a log file — Replay minus the I/O. This
  /// is the decode path the fuzz harness drives with arbitrary bytes, so
  /// it must return Corruption (never crash) on any input.
  static StatusOr<ReplayResult> ReplayData(std::string_view data);

 private:
  WriteAheadLog(std::string path, WalOptions options);

  /// Shared tail of Append/AppendReplicated once the sequence is chosen.
  StatusOr<uint64_t> AppendWithSequence(const WalRecord& record,
                                        uint64_t sequence);

  /// Writes `framed` (one or many complete frames) atomically: rollback
  /// via ftruncate on a short write, poisoning when the rollback fails.
  Status WriteFramed(std::string_view framed);

  /// fsync with poisoning semantics (see Append).
  Status SyncLocked();

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t last_sequence_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t record_count_ = 0;
  uint64_t unsynced_records_ = 0;
  uint64_t sync_count_ = 0;
  bool poisoned_ = false;
};

class WalTailBuffer;

/// Point-in-time counters of a GroupCommitWal (DESIGN.md §12). The
/// histogram buckets batch sizes at powers of two: bucket i counts batches
/// of size in (2^(i-1), 2^i] — i.e. 1, 2, 3-4, 5-8, 9-16, 17-32, and the
/// last bucket everything larger.
struct GroupCommitStats {
  static constexpr size_t kHistogramBuckets = 7;
  uint64_t batches_written = 0;
  uint64_t records_written = 0;
  /// fsync calls issued (≤ batches in kAlways mode — the amortization).
  uint64_t syncs = 0;
  uint64_t max_batch_records = 0;
  uint64_t batch_size_histogram[kHistogramBuckets] = {};
};

/// The group-commit front end of a WriteAheadLog (DESIGN.md §12): an
/// append queue drained by one dedicated log-writer thread that folds all
/// concurrently submitted records into a single AppendBatch — one write(),
/// one sync decision — and wakes each committer only once its record's
/// batch has resolved:
///
///   kAlways  — after the batch's fsync, so a woken committer's record is
///              durable (one fsync amortized over every commit in the
///              batch);
///   kEveryN  — after the write; fsync happens once per N records across
///              batches, exactly the standing every_n contract;
///   kNone    — after the write (the OS flushes when it likes).
///
/// Sequences are assigned by the CALLER (the service's global allocator
/// draws sequence + commit timestamp under one lock so WAL order, apply
/// order and replication order all agree); Append here only coordinates
/// durability. The hooks fire on the writer thread only after the batch
/// passed its sync decision — the replication tail and the
/// read-your-writes floor publish only acknowledged prefixes, so a
/// follower can never observe a record the leader did not acknowledge.
///
/// Error isolation is per batch: a write failure (rolled back cleanly by
/// AppendBatch) fails exactly the committers in that batch, and later
/// batches proceed — their sequences leave a gap, which replay and
/// replication already tolerate. Poisoning (failed fsync/rollback) fails
/// everything until recovery, exactly as the underlying log.
class GroupCommitWal {
 public:
  struct Hooks {
    /// Acknowledged records are pushed here in sequence order; may be null.
    WalTailBuffer* tail = nullptr;
    /// Commits currently inside the service's commit path (ticket
    /// allocated, turn not yet finished) — the batch-formation signal for
    /// WalOptions::group_commit_window_us. Must be lock-free (it is read
    /// with the queue lock held); may be null (no window is ever held).
    std::function<uint64_t()> commits_in_flight;
  };

  /// A pending submission handle: lives on the submitting thread's stack
  /// between Enqueue and Wait (the writer thread fills it in place, so it
  /// must not move meanwhile).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class GroupCommitWal;
    Status result_;
    bool done_ = false;
  };

  /// Takes ownership of an opened log; spawns the writer thread.
  GroupCommitWal(std::unique_ptr<WriteAheadLog> wal, Hooks hooks);
  /// Stops the writer thread. No submission may be in flight (Wait blocks
  /// until its record resolves, so a live caller cannot coexist with
  /// destruction); anything still queued fails kUnavailable.
  ~GroupCommitWal();

  GroupCommitWal(const GroupCommitWal&) = delete;
  GroupCommitWal& operator=(const GroupCommitWal&) = delete;

  /// Submits `record` (sequence pre-assigned, strictly above every
  /// previously submitted sequence — callers serialize their Enqueues
  /// through the sequence allocator's lock, which makes queue order equal
  /// sequence order by construction). Returns immediately; the caller
  /// later blocks in Wait. A submission rejected up front (shutdown,
  /// poisoned log, non-ascending sequence) resolves the ticket
  /// immediately with the error.
  void Enqueue(const WalRecord& record, Ticket* ticket) EXCLUDES(mu_);

  /// Enqueues `records[i]` onto `tickets[i]` in one queue critical
  /// section: the whole run lands in the same drain, hence shares one
  /// batch and at most one fsync (the WriteBatch request path).
  void EnqueueRun(const std::vector<WalRecord>& records,
                  const std::vector<Ticket*>& tickets) EXCLUDES(mu_);

  /// Blocks until the ticket's batch resolved: OK once the record is
  /// acknowledged per the sync policy, the batch's error otherwise.
  Status Wait(Ticket* ticket) EXCLUDES(mu_);

  /// Enqueue + Wait — the convenience form for serial callers (the
  /// replicated-apply path, tests).
  Status Append(const WalRecord& record) EXCLUDES(mu_);

  /// Waits for everything already queued to be written, then forces an
  /// fsync (the ack barrier before a checkpoint, mirroring
  /// WriteAheadLog::Sync for the kNone/kEveryN modes).
  Status Flush() EXCLUDES(mu_);

  /// Post-checkpoint truncation (WriteAheadLog::Reset) through the group
  /// path. The caller must hold the commit path quiescent (no Append in
  /// flight or able to start — the service takes every commit shard);
  /// the queue is drained, the writer parked, and the log swapped.
  Status Reset(uint64_t base_sequence) EXCLUDES(mu_);

  // Gauges mirrored from the underlying log after every batch, readable
  // from any thread without a lock (Stats() no longer needs the commit
  // lock — each gauge is independently fresh).
  uint64_t last_sequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  uint64_t file_bytes() const {
    return file_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  bool poisoned() const { return poisoned_.load(std::memory_order_relaxed); }

  GroupCommitStats Stats() const EXCLUDES(mu_);

  /// Test access to the owned log. The writer thread appends to it; do
  /// not call mutating members through this.
  const WriteAheadLog* wal() const { return wal_.get(); }

 private:
  struct Pending {
    WalRecord record;
    /// Points at the submitting caller's Ticket; the writer fills it
    /// under mu_ and signals ack_cv_.
    Ticket* ticket;
  };

  void EnqueueLocked(const WalRecord& record, Ticket* ticket) REQUIRES(mu_);
  /// Wakes the writer for a new record — immediately when it is idle,
  /// but during the batch-formation window only once the queue covers
  /// every commit in flight (see WalOptions::group_commit_window_us).
  void SignalWriterLocked() REQUIRES(mu_);
  void WriterLoop() EXCLUDES(mu_);
  void MirrorGauges() REQUIRES(mu_);

  /// Appended to by the writer thread between the two mu_ critical
  /// sections of a batch (writing_ is true then); quiesced operations
  /// (Flush/Reset) touch it only under mu_ with the writer parked.
  std::unique_ptr<WriteAheadLog> wal_;
  Hooks hooks_;

  mutable Mutex mu_{LockRank::kWalQueue};
  CondVar queue_cv_;  // wakes the writer: queue non-empty or stopping
  CondVar ack_cv_;    // wakes committers and quiesced ops: batch resolved
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  /// Highest sequence ever submitted (validates ascending submission).
  uint64_t submitted_watermark_ GUARDED_BY(mu_) = 0;
  bool writing_ GUARDED_BY(mu_) = false;  // writer mid-batch, log in use
  /// Writer inside the batch-formation window — enqueues skip the wakeup
  /// unless they complete the batch (SignalWriterLocked).
  bool forming_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;

  GroupCommitStats stats_ GUARDED_BY(mu_);

  std::atomic<uint64_t> last_sequence_{0};
  std::atomic<uint64_t> file_bytes_{0};
  std::atomic<uint64_t> record_count_{0};
  std::atomic<uint64_t> sync_count_{0};
  std::atomic<bool> poisoned_{false};

  Thread writer_;  // last: joined by the destructor
};

/// The checkpoint stamp: a tiny atomic file recording the WAL sequence a
/// checkpoint covers. Recovery replays only records above it.
Status WriteCheckpointStamp(const std::string& dir, uint64_t sequence);
/// NotFound when no stamp exists (fresh or legacy directory).
StatusOr<uint64_t> ReadCheckpointStamp(const std::string& dir);

/// File names inside a durability data_dir (store.txml / indexes.txml are
/// owned by TemporalXmlDatabase::Save).
inline constexpr char kWalFileName[] = "wal.txml";
inline constexpr char kCheckpointStampFileName[] = "checkpoint.txml";

}  // namespace txml

#endif  // TXML_SRC_STORAGE_WAL_H_
