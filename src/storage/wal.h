#ifndef TXML_SRC_STORAGE_WAL_H_
#define TXML_SRC_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/vacuum.h"
#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"

namespace txml {

/// The write-ahead commit log (DESIGN.md §9): an append-only file of
/// CRC32C-framed, length-prefixed *logical* commit records. A record
/// describes a commit the way the service API received it — Put as
/// (url, xml text, commit timestamp), Delete as (url, timestamp), Vacuum
/// as the retention policy — not as physical page/delta images: replaying
/// a record through the normal write path is deterministic (same parse,
/// same diff, same XID assignment), so checkpoint + replay reconstructs
/// the exact pre-crash store. The same (url, delta, timestamp) stream is
/// the replication feed the ROADMAP's read-replica item needs.
///
/// File layout (all little-endian, src/util/coding.h primitives):
///
///   header:  fixed32 magic "TWL1", varint64 base_sequence
///   record*: varint64 body_len, byte[body_len] body,
///            fixed32 masked_crc32c(body)
///   body:    varint32 type, varint64 sequence, then per type (see wal.cc)
///
/// Sequences are assigned by Append, strictly increasing, continuing
/// across reopen and across Reset (the post-checkpoint truncation writes
/// the covered sequence into the new header as base_sequence).
///
/// Torn-tail tolerance: a crash mid-append leaves a truncated or
/// CRC-failing suffix. Replay drops that suffix (reporting it) and keeps
/// everything before it; Open physically truncates the file back to the
/// last complete record so new appends land on a clean boundary.

enum class WalSyncMode {
  /// Never fsync; the OS flushes when it likes. Fastest, loses the tail
  /// of acknowledged commits on power loss (not on process crash).
  kNone = 0,
  /// Group commit: fsync once every sync_every_n appended records.
  kEveryN = 1,
  /// fsync every append before acknowledging. The default: an
  /// acknowledged commit survives power loss.
  kAlways = 2,
};

/// Renders "none" / "every_n" / "always".
std::string_view WalSyncModeToString(WalSyncMode mode);
/// Parses the --sync-mode flag vocabulary ("none", "every_n", "always").
StatusOr<WalSyncMode> ParseWalSyncMode(std::string_view text);

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kAlways;
  /// kEveryN: fsync once per this many appended records. Must be > 0.
  uint64_t sync_every_n = 8;
};

enum class WalRecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kVacuum = 3,
};

/// One logical commit record.
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  /// Assigned by Append; read back by Replay.
  uint64_t sequence = 0;
  /// Commit timestamp (kPut / kDelete; unused for kVacuum).
  Timestamp ts;
  /// Document URL (kPut / kDelete).
  std::string url;
  /// kPut: the XML text exactly as the service received it.
  std::string payload;
  /// kVacuum: the retention horizons.
  RetentionPolicy policy;
};

/// Encodes a record body exactly as it appears between the length prefix
/// and the CRC inside the log file — `varint32 type, varint64 sequence`,
/// then per-type fields. The replication protocol ships these bodies
/// verbatim inside batch frames, so leader and follower agree on the
/// byte-level record format by construction.
std::string EncodeWalRecordBody(const WalRecord& record, uint64_t sequence);
/// Inverse of EncodeWalRecordBody. Returns Corruption (never crashes) on
/// malformed input; fuzzed via the wire decode harness.
StatusOr<WalRecord> DecodeWalRecordBody(std::string_view body);

class WriteAheadLog {
 public:
  /// Opens the log at `path` for appending, creating it (with
  /// base_sequence = min_base_sequence) when absent. An existing file is
  /// scanned: a torn tail is physically truncated away, and appends
  /// continue after the last complete record. `min_base_sequence` guards
  /// sequence monotonicity across a crash window where the checkpoint
  /// stamp advanced but log truncation did not happen (or the log file is
  /// gone): assigned sequences always exceed both the file's last record
  /// and this floor.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      std::string path, WalOptions options, uint64_t min_base_sequence = 0);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends `record` (its sequence field is ignored; the next sequence is
  /// assigned and returned) and applies the sync policy. On a write
  /// failure the partial append is rolled back (ftruncate to the
  /// pre-append length) so the file stays clean; if the rollback itself
  /// fails, or an fsync fails (after which the kernel may have dropped
  /// dirty pages — the file's durable content is unknowable), the log is
  /// *poisoned*: every further Append fails kUnavailable until the
  /// process restarts and recovery re-establishes a trusted tail.
  StatusOr<uint64_t> Append(const WalRecord& record);

  /// Appends a record shipped from a replication leader, *preserving* its
  /// sequence number so the follower's log lives in the leader's sequence
  /// space (recovery and ack bookkeeping then need no translation). The
  /// record's sequence must exceed last_sequence(); gaps are fine (the
  /// leader skips sequences for commits its idempotence guards elided).
  /// Same durability/poisoning semantics as Append.
  StatusOr<uint64_t> AppendReplicated(const WalRecord& record);

  /// Explicit group-commit flush (kNone/kEveryN callers before an ack
  /// barrier). No-op when nothing is unsynced.
  Status Sync();

  /// Atomically replaces the log with a fresh empty one whose appends
  /// continue from base_sequence + 1 — the truncation after a checkpoint
  /// covering base_sequence. On failure the old log (still containing
  /// everything) remains in use; replay tolerates the stale records via
  /// the sequence floor.
  Status Reset(uint64_t base_sequence);

  uint64_t last_sequence() const { return last_sequence_; }
  /// Current file length in bytes (header + records) — the size trigger
  /// for auto-checkpointing.
  uint64_t file_bytes() const { return file_bytes_; }
  /// Complete records currently in the file.
  uint64_t record_count() const { return record_count_; }
  bool poisoned() const { return poisoned_; }
  const std::string& path() const { return path_; }

  struct ReplayResult {
    std::vector<WalRecord> records;
    /// The header's base_sequence: every record in the file has a sequence
    /// above it. A replication subscriber asking for records at or below
    /// this floor must be re-seeded from a checkpoint instead.
    uint64_t base_sequence = 0;
    /// max(header base_sequence, last record's sequence).
    uint64_t last_sequence = 0;
    /// True when a truncated or CRC-failing suffix was dropped.
    bool tail_dropped = false;
    uint64_t bytes_dropped = 0;
    /// Bytes of header + complete records.
    uint64_t valid_bytes = 0;
  };

  /// Reads the log for recovery. An absent file yields an empty result
  /// (last_sequence 0). A torn tail is dropped and reported; a file too
  /// corrupt to even carry a header is Corruption.
  static StatusOr<ReplayResult> Replay(const std::string& path);

  /// Scans an in-memory image of a log file — Replay minus the I/O. This
  /// is the decode path the fuzz harness drives with arbitrary bytes, so
  /// it must return Corruption (never crash) on any input.
  static StatusOr<ReplayResult> ReplayData(std::string_view data);

 private:
  WriteAheadLog(std::string path, WalOptions options);

  /// Shared tail of Append/AppendReplicated once the sequence is chosen.
  StatusOr<uint64_t> AppendWithSequence(const WalRecord& record,
                                        uint64_t sequence);

  /// fsync with poisoning semantics (see Append).
  Status SyncLocked();

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t last_sequence_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t record_count_ = 0;
  uint64_t unsynced_records_ = 0;
  bool poisoned_ = false;
};

/// The checkpoint stamp: a tiny atomic file recording the WAL sequence a
/// checkpoint covers. Recovery replays only records above it.
Status WriteCheckpointStamp(const std::string& dir, uint64_t sequence);
/// NotFound when no stamp exists (fresh or legacy directory).
StatusOr<uint64_t> ReadCheckpointStamp(const std::string& dir);

/// File names inside a durability data_dir (store.txml / indexes.txml are
/// owned by TemporalXmlDatabase::Save).
inline constexpr char kWalFileName[] = "wal.txml";
inline constexpr char kCheckpointStampFileName[] = "checkpoint.txml";

}  // namespace txml

#endif  // TXML_SRC_STORAGE_WAL_H_
