#include "src/storage/stratum_store.h"

#include <utility>

#include "src/xml/codec.h"

namespace txml {

StatusOr<DocId> StratumStore::Put(const std::string& url,
                                  std::unique_ptr<XmlNode> tree,
                                  Timestamp ts) {
  if (tree == nullptr || !tree->is_element()) {
    return Status::InvalidArgument("document version must be an element tree");
  }
  auto it = by_url_.find(url);
  DocId doc_id;
  if (it == by_url_.end()) {
    doc_id = next_doc_id_++;
    by_url_[url] = doc_id;
    by_id_[doc_id] = StratumDocument{doc_id, url, Timestamp::Infinity(), {}};
  } else {
    doc_id = it->second;
  }
  StratumDocument& doc = by_id_[doc_id];
  if (!doc.versions.empty() && ts <= doc.versions.back().ts) {
    return Status::InvalidArgument("version timestamps must increase");
  }
  if (!doc.delete_ts.IsInfinite()) {
    return Status::InvalidArgument("document was deleted");
  }
  doc.versions.push_back(StoredVersion{ts, std::move(tree)});
  return doc_id;
}

Status StratumStore::Delete(const std::string& url, Timestamp ts) {
  auto it = by_url_.find(url);
  if (it == by_url_.end()) {
    return Status::NotFound("no document at '" + url + "'");
  }
  by_id_[it->second].delete_ts = ts;
  return Status::OK();
}

const StratumStore::StratumDocument* StratumStore::Find(
    const std::string& url) const {
  auto it = by_url_.find(url);
  return it == by_url_.end() ? nullptr : &by_id_.at(it->second);
}

StatusOr<const XmlNode*> StratumStore::SnapshotAt(const std::string& url,
                                                  Timestamp t) const {
  const StratumDocument* doc = Find(url);
  if (doc == nullptr) {
    return Status::NotFound("no document at '" + url + "'");
  }
  if (t >= doc->delete_ts) {
    return Status::NotFound("document deleted before " + t.ToString());
  }
  // Middleware scan: latest version with ts <= t.
  const XmlNode* found = nullptr;
  for (const StoredVersion& version : doc->versions) {
    if (version.ts <= t) {
      found = version.tree.get();
    } else {
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("document does not exist yet at " + t.ToString());
  }
  return found;
}

std::vector<const XmlNode*> StratumStore::ScanSnapshot(const Pattern& pattern,
                                                       Timestamp t) const {
  std::vector<const XmlNode*> results;
  int projected = pattern.ProjectedId();
  if (projected < 0) return results;
  for (const auto& [id, doc] : by_id_) {
    if (t >= doc.delete_ts) continue;
    const XmlNode* snapshot = nullptr;
    for (const StoredVersion& version : doc.versions) {
      if (version.ts <= t) snapshot = version.tree.get();
    }
    if (snapshot == nullptr) continue;
    for (const PatternMatch& match : MatchPattern(*snapshot, pattern)) {
      results.push_back(match[static_cast<size_t>(projected)]);
    }
  }
  return results;
}

std::vector<StratumStore::AllMatch> StratumStore::ScanAllVersions(
    const Pattern& pattern) const {
  std::vector<AllMatch> results;
  int projected = pattern.ProjectedId();
  if (projected < 0) return results;
  for (const auto& [id, doc] : by_id_) {
    for (const StoredVersion& version : doc.versions) {
      for (const PatternMatch& match : MatchPattern(*version.tree, pattern)) {
        results.push_back(AllMatch{
            id, version.ts, match[static_cast<size_t>(projected)]});
      }
    }
  }
  return results;
}

size_t StratumStore::StorageBytes() const {
  size_t total = 0;
  for (const auto& [id, doc] : by_id_) {
    for (const StoredVersion& version : doc.versions) {
      total += EncodeNodeToString(*version.tree).size();
    }
  }
  return total;
}

std::vector<const StratumStore::StratumDocument*> StratumStore::AllDocuments()
    const {
  std::vector<const StratumDocument*> docs;
  docs.reserve(by_id_.size());
  for (const auto& [id, doc] : by_id_) docs.push_back(&doc);
  return docs;
}

}  // namespace txml
