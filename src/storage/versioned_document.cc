#include "src/storage/versioned_document.h"

#include <algorithm>
#include <utility>

#include "src/diff/diff.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/macros.h"
#include "src/xml/codec.h"

namespace txml {

VersionedDocument::VersionedDocument(DocId doc_id, std::string url,
                                     uint32_t snapshot_every)
    : doc_id_(doc_id), url_(std::move(url)), snapshot_every_(snapshot_every) {}

StatusOr<VersionedDocument::AppendResult> VersionedDocument::AppendVersion(
    std::unique_ptr<XmlNode> content, Timestamp ts) {
  if (content == nullptr || !content->is_element()) {
    return Status::InvalidArgument("document version must be an element tree");
  }
  if (deleted()) {
    return Status::InvalidArgument("document '" + url_ +
                                   "' was deleted; EIDs are not reused");
  }
  if (version_count() > 0 && ts <= delta_index_.last_timestamp()) {
    return Status::InvalidArgument(
        "version timestamps must be strictly increasing (transaction time)");
  }

  AppendResult result;
  if (current_ == nullptr) {
    AssignFreshXids(content.get(), &xids_);
    StampAll(content.get(), ts);
    current_ = std::move(content);
    delta_index_.Append(ts);
    result.version = 1;
    return result;
  }

  TXML_ASSIGN_OR_RETURN(DiffResult diff,
                        DiffTrees(*current_, content.get(), &xids_, ts));
  deltas_.push_back(std::move(diff.script));
  delta_index_.Append(ts);
  current_ = std::move(content);
  result.version = version_count();
  result.delta = &deltas_.back();

  if (snapshot_every_ > 0 && result.version % snapshot_every_ == 0) {
    snapshots_[result.version] = current_->Clone();
  }
  return result;
}

Status VersionedDocument::MarkDeleted(Timestamp ts) {
  if (version_count() == 0) {
    return Status::InvalidArgument("cannot delete an empty document");
  }
  if (deleted()) {
    return Status::InvalidArgument("document already deleted");
  }
  if (ts <= delta_index_.last_timestamp()) {
    return Status::InvalidArgument(
        "delete timestamp must follow the last version");
  }
  delete_ts_ = ts;
  return Status::OK();
}

TimeInterval VersionedDocument::VersionValidity(VersionNum v) const {
  TimeInterval iv = delta_index_.ValidityOf(v);
  if (iv.end > delete_ts_) iv.end = delete_ts_;
  return iv;
}

bool VersionedDocument::IsRetained(VersionNum v) const {
  if (v < first_retained_ || v > version_count()) return false;
  if (v >= dense_floor_) return true;
  return std::binary_search(coarse_kept_.begin(), coarse_kept_.end(), v);
}

VersionNum VersionedDocument::SnapToRetained(VersionNum v) const {
  if (v < first_retained_) return 0;
  if (v >= dense_floor_) return std::min(v, version_count());
  auto it = std::upper_bound(coarse_kept_.begin(), coarse_kept_.end(), v);
  return *(it - 1);  // coarse_kept_ starts at first_retained_ <= v
}

VersionNum VersionedDocument::NextRetained(VersionNum v) const {
  if (v >= dense_floor_) return v < version_count() ? v + 1 : 0;
  auto it = std::upper_bound(coarse_kept_.begin(), coarse_kept_.end(), v);
  return it == coarse_kept_.end() ? dense_floor_ : *it;
}

VersionNum VersionedDocument::PrevRetained(VersionNum v) const {
  if (v > dense_floor_) return v - 1;
  auto it = std::lower_bound(coarse_kept_.begin(), coarse_kept_.end(), v);
  return it == coarse_kept_.begin() ? 0 : *(it - 1);
}

bool VersionedDocument::AnyRetainedIn(VersionNum start,
                                      VersionNum end) const {
  if (end <= start || version_count() == 0) return false;
  VersionNum last = std::min<VersionNum>(end - 1, version_count());
  VersionNum snap = SnapToRetained(last);
  return snap != 0 && snap >= start;
}

const EditScript& VersionedDocument::RetainedTransition(
    VersionNum from) const {
  if (from >= dense_floor_) return TransitionDelta(from);
  auto it = std::lower_bound(coarse_kept_.begin(), coarse_kept_.end(), from);
  TXML_DCHECK(it != coarse_kept_.end() && *it == from);
  return coarse_deltas_[it - coarse_kept_.begin()];
}

TimeInterval VersionedDocument::RetainedValidity(VersionNum v) const {
  VersionNum next = NextRetained(v);
  TimeInterval iv{delta_index_.TimestampOf(v),
                  next != 0 ? delta_index_.TimestampOf(next)
                            : Timestamp::Infinity()};
  if (iv.end > delete_ts_) iv.end = delete_ts_;
  return iv;
}

size_t VersionedDocument::RetainedSteps(VersionNum lo, VersionNum hi) const {
  if (lo >= dense_floor_) return hi - lo;
  size_t lo_idx = std::lower_bound(coarse_kept_.begin(), coarse_kept_.end(),
                                   lo) -
                  coarse_kept_.begin();
  if (hi < dense_floor_) {
    size_t hi_idx = std::lower_bound(coarse_kept_.begin(),
                                     coarse_kept_.end(), hi) -
                    coarse_kept_.begin();
    return hi_idx - lo_idx;
  }
  return (coarse_kept_.size() - lo_idx) + (hi - dense_floor_);
}

StatusOr<std::unique_ptr<XmlNode>> VersionedDocument::ReconstructVersion(
    VersionNum v, ReconstructStats* stats) const {
  if (v < 1 || v > version_count()) {
    return Status::OutOfRange("version " + std::to_string(v) +
                              " out of range [1, " +
                              std::to_string(version_count()) + "]");
  }
  if (v < first_retained_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " of document '" + url_ +
                            "' was vacuumed (first retained version is " +
                            std::to_string(first_retained_) + ")");
  }
  // In the coarse zone a vacuumed-away version resolves to the nearest
  // retained version at or before it — the content the coarsened history
  // presents for that version's time range.
  VersionNum target = SnapToRetained(v);

  // Backward anchor: the nearest complete version at or after the target —
  // the current version or an intermediate snapshot (Section 7.3.3).
  VersionNum back_anchor = version_count();
  bool from_snapshot = false;
  auto it = snapshots_.lower_bound(target);
  if (it != snapshots_.end() && it->first < back_anchor) {
    back_anchor = it->first;
    from_snapshot = true;
  }
  size_t back_cost = RetainedSteps(target, back_anchor);

  // A vacuumed document also has a complete version at the *bottom* of the
  // chain: the base snapshot. Walk forward from it when that is cheaper —
  // this is what makes old-version reads faster after coarsening.
  if (base_ != nullptr &&
      RetainedSteps(first_retained_, target) < back_cost) {
    std::unique_ptr<XmlNode> tree = base_->Clone();
    size_t applied = 0;
    for (VersionNum at = first_retained_; at < target;
         at = NextRetained(at)) {
      TXML_RETURN_IF_ERROR(RetainedTransition(at).ApplyForward(tree.get()));
      ++applied;
    }
    if (stats != nullptr) {
      stats->deltas_applied = applied;
      stats->used_snapshot = false;
      stats->used_base = true;
      stats->base_version = first_retained_;
    }
    return tree;
  }

  std::unique_ptr<XmlNode> tree =
      from_snapshot ? it->second->Clone() : current_->Clone();

  // Apply retained transitions backwards down to the target.
  size_t applied = 0;
  for (VersionNum at = back_anchor; at > target;) {
    VersionNum prev = PrevRetained(at);
    TXML_RETURN_IF_ERROR(RetainedTransition(prev).ApplyBackward(tree.get()));
    at = prev;
    ++applied;
  }
  if (stats != nullptr) {
    stats->deltas_applied = applied;
    stats->used_snapshot = from_snapshot;
    stats->used_base = false;
    stats->base_version = back_anchor;
  }
  return tree;
}

StatusOr<std::unique_ptr<XmlNode>> VersionedDocument::ReconstructAt(
    Timestamp t, ReconstructStats* stats) const {
  if (!ExistsAt(t)) {
    return Status::NotFound("document '" + url_ + "' does not exist at " +
                            t.ToString());
  }
  auto v = delta_index_.VersionAt(t);
  TXML_DCHECK(v.has_value());
  return ReconstructVersion(*v, stats);
}

std::vector<VersionNum> VersionedDocument::SnapshotVersions() const {
  std::vector<VersionNum> versions;
  versions.reserve(snapshots_.size());
  for (const auto& [v, tree] : snapshots_) versions.push_back(v);
  return versions;
}

size_t VersionedDocument::CurrentBytes() const {
  if (current_ == nullptr) return 0;
  return EncodeNodeToString(*current_).size();
}

size_t VersionedDocument::DeltaBytes() const {
  size_t total = 0;
  std::string buf;
  for (const EditScript& delta : deltas_) {
    buf.clear();
    delta.EncodeTo(&buf);
    total += buf.size();
  }
  for (const EditScript& delta : coarse_deltas_) {
    buf.clear();
    delta.EncodeTo(&buf);
    total += buf.size();
  }
  return total;
}

size_t VersionedDocument::SnapshotBytes() const {
  size_t total = 0;
  for (const auto& [v, tree] : snapshots_) {
    total += EncodeNodeToString(*tree).size();
  }
  if (base_ != nullptr) total += EncodeNodeToString(*base_).size();
  return total;
}

void VersionedDocument::EncodeTo(std::string* dst) const {
  PutVarint32(dst, doc_id_);
  PutLengthPrefixed(dst, url_);
  PutVarint32(dst, snapshot_every_);
  PutVarint32(dst, xids_.next());
  PutVarintSigned64(dst, delete_ts_.micros());
  delta_index_.EncodeTo(dst);
  PutVarint32(dst, current_ != nullptr ? 1 : 0);
  if (current_ != nullptr) EncodeNode(*current_, dst);
  PutVarint64(dst, deltas_.size());
  for (const EditScript& delta : deltas_) {
    std::string buf;
    delta.EncodeTo(&buf);
    PutLengthPrefixed(dst, buf);
  }
  PutVarint64(dst, snapshots_.size());
  for (const auto& [v, tree] : snapshots_) {
    PutVarint32(dst, v);
    EncodeNode(*tree, dst);
  }
  // Trailing retention section, present only once the document has been
  // vacuumed so unvacuumed documents keep the original byte layout
  // (Decode distinguishes the two via AtEnd).
  if (base_ != nullptr) {
    PutVarint32(dst, first_retained_);
    PutVarint32(dst, dense_floor_);
    EncodeNode(*base_, dst);
    PutVarint64(dst, coarse_kept_.size());
    for (size_t i = 0; i < coarse_kept_.size(); ++i) {
      PutVarint32(dst, coarse_kept_[i]);
      std::string buf;
      coarse_deltas_[i].EncodeTo(&buf);
      PutLengthPrefixed(dst, buf);
    }
  }
}

StatusOr<std::unique_ptr<VersionedDocument>> VersionedDocument::Decode(
    std::string_view data) {
  Decoder decoder(data);
  auto doc_id = decoder.ReadVarint32();
  if (!doc_id.ok()) return doc_id.status();
  auto url = decoder.ReadLengthPrefixed();
  if (!url.ok()) return url.status();
  auto snapshot_every = decoder.ReadVarint32();
  if (!snapshot_every.ok()) return snapshot_every.status();
  auto next_xid = decoder.ReadVarint32();
  if (!next_xid.ok()) return next_xid.status();
  auto delete_ts = decoder.ReadVarintSigned64();
  if (!delete_ts.ok()) return delete_ts.status();

  auto doc = std::make_unique<VersionedDocument>(
      *doc_id, std::string(*url), *snapshot_every);
  doc->xids_ = XidAllocator(*next_xid);
  doc->delete_ts_ = Timestamp::FromMicros(*delete_ts);

  auto index = DeltaIndex::Decode(&decoder);
  if (!index.ok()) return index.status();
  doc->delta_index_ = std::move(*index);

  auto has_current = decoder.ReadVarint32();
  if (!has_current.ok()) return has_current.status();
  if (*has_current != 0) {
    auto current = DecodeNode(&decoder);
    if (!current.ok()) return current.status();
    doc->current_ = std::move(*current);
  }

  auto delta_count = decoder.ReadVarint64();
  if (!delta_count.ok()) return delta_count.status();
  for (uint64_t i = 0; i < *delta_count; ++i) {
    auto buf = decoder.ReadLengthPrefixed();
    if (!buf.ok()) return buf.status();
    auto delta = EditScript::Decode(*buf);
    if (!delta.ok()) return delta.status();
    doc->deltas_.push_back(std::move(*delta));
  }

  auto snapshot_count = decoder.ReadVarint64();
  if (!snapshot_count.ok()) return snapshot_count.status();
  for (uint64_t i = 0; i < *snapshot_count; ++i) {
    auto v = decoder.ReadVarint32();
    if (!v.ok()) return v.status();
    auto tree = DecodeNode(&decoder);
    if (!tree.ok()) return tree.status();
    doc->snapshots_[*v] = std::move(*tree);
  }

  if (!decoder.AtEnd()) {
    // Retention section of a vacuumed document.
    auto first_retained = decoder.ReadVarint32();
    if (!first_retained.ok()) return first_retained.status();
    auto dense_floor = decoder.ReadVarint32();
    if (!dense_floor.ok()) return dense_floor.status();
    if (*first_retained < 1 || *dense_floor < *first_retained) {
      return Status::Corruption("bad retention horizons");
    }
    auto base = DecodeNode(&decoder);
    if (!base.ok()) return base.status();
    auto kept_count = decoder.ReadVarint64();
    if (!kept_count.ok()) return kept_count.status();
    for (uint64_t i = 0; i < *kept_count; ++i) {
      auto v = decoder.ReadVarint32();
      if (!v.ok()) return v.status();
      auto buf = decoder.ReadLengthPrefixed();
      if (!buf.ok()) return buf.status();
      auto delta = EditScript::Decode(*buf);
      if (!delta.ok()) return delta.status();
      doc->coarse_kept_.push_back(*v);
      doc->coarse_deltas_.push_back(std::move(*delta));
    }
    doc->first_retained_ = *first_retained;
    doc->dense_floor_ = *dense_floor;
    doc->base_ = std::move(*base);
    doc->delta_index_.RestoreFirstVersion(*first_retained);
    bool kept_ok =
        doc->coarse_kept_.empty()
            ? doc->dense_floor_ == doc->first_retained_
            : doc->coarse_kept_.front() == doc->first_retained_ &&
                  doc->coarse_kept_.back() < doc->dense_floor_ &&
                  std::is_sorted(doc->coarse_kept_.begin(),
                                 doc->coarse_kept_.end());
    if (!kept_ok || doc->dense_floor_ > doc->version_count()) {
      return Status::Corruption("bad coarse retention chain");
    }
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after versioned document");
  }

  VersionNum expected_deltas =
      *has_current != 0 ? doc->version_count() - doc->dense_floor_ : 0;
  if (doc->deltas_.size() != expected_deltas ||
      (*has_current == 0 && doc->version_count() != 0)) {
    return Status::Corruption("delta chain length does not match index");
  }
  return doc;
}

}  // namespace txml
