#include "src/storage/versioned_document.h"

#include <utility>

#include "src/diff/diff.h"
#include "src/util/coding.h"
#include "src/util/macros.h"
#include "src/xml/codec.h"

namespace txml {

VersionedDocument::VersionedDocument(DocId doc_id, std::string url,
                                     uint32_t snapshot_every)
    : doc_id_(doc_id), url_(std::move(url)), snapshot_every_(snapshot_every) {}

StatusOr<VersionedDocument::AppendResult> VersionedDocument::AppendVersion(
    std::unique_ptr<XmlNode> content, Timestamp ts) {
  if (content == nullptr || !content->is_element()) {
    return Status::InvalidArgument("document version must be an element tree");
  }
  if (deleted()) {
    return Status::InvalidArgument("document '" + url_ +
                                   "' was deleted; EIDs are not reused");
  }
  if (version_count() > 0 && ts <= delta_index_.last_timestamp()) {
    return Status::InvalidArgument(
        "version timestamps must be strictly increasing (transaction time)");
  }

  AppendResult result;
  if (current_ == nullptr) {
    AssignFreshXids(content.get(), &xids_);
    StampAll(content.get(), ts);
    current_ = std::move(content);
    delta_index_.Append(ts);
    result.version = 1;
    return result;
  }

  TXML_ASSIGN_OR_RETURN(DiffResult diff,
                        DiffTrees(*current_, content.get(), &xids_, ts));
  deltas_.push_back(std::move(diff.script));
  delta_index_.Append(ts);
  current_ = std::move(content);
  result.version = version_count();
  result.delta = &deltas_.back();

  if (snapshot_every_ > 0 && result.version % snapshot_every_ == 0) {
    snapshots_[result.version] = current_->Clone();
  }
  return result;
}

Status VersionedDocument::MarkDeleted(Timestamp ts) {
  if (version_count() == 0) {
    return Status::InvalidArgument("cannot delete an empty document");
  }
  if (deleted()) {
    return Status::InvalidArgument("document already deleted");
  }
  if (ts <= delta_index_.last_timestamp()) {
    return Status::InvalidArgument(
        "delete timestamp must follow the last version");
  }
  delete_ts_ = ts;
  return Status::OK();
}

TimeInterval VersionedDocument::VersionValidity(VersionNum v) const {
  TimeInterval iv = delta_index_.ValidityOf(v);
  if (iv.end > delete_ts_) iv.end = delete_ts_;
  return iv;
}

StatusOr<std::unique_ptr<XmlNode>> VersionedDocument::ReconstructVersion(
    VersionNum v, ReconstructStats* stats) const {
  if (v < 1 || v > version_count()) {
    return Status::OutOfRange("version " + std::to_string(v) +
                              " out of range [1, " +
                              std::to_string(version_count()) + "]");
  }
  // Pick the nearest complete version at or after v: the current version
  // or the oldest snapshot with version >= v (Section 7.3.3).
  VersionNum base = version_count();
  bool from_snapshot = false;
  auto it = snapshots_.lower_bound(v);
  if (it != snapshots_.end() && it->first < base) {
    base = it->first;
    from_snapshot = true;
  }
  std::unique_ptr<XmlNode> tree =
      from_snapshot ? it->second->Clone() : current_->Clone();

  // Apply deltas backwards: transition i turns version i+1 into i.
  for (VersionNum i = base - 1; i >= v; --i) {
    TXML_RETURN_IF_ERROR(TransitionDelta(i).ApplyBackward(tree.get()));
    if (i == 1) break;  // VersionNum is unsigned
  }
  if (stats != nullptr) {
    stats->deltas_applied = base - v;
    stats->used_snapshot = from_snapshot;
    stats->base_version = base;
  }
  return tree;
}

StatusOr<std::unique_ptr<XmlNode>> VersionedDocument::ReconstructAt(
    Timestamp t, ReconstructStats* stats) const {
  if (!ExistsAt(t)) {
    return Status::NotFound("document '" + url_ + "' does not exist at " +
                            t.ToString());
  }
  auto v = delta_index_.VersionAt(t);
  TXML_DCHECK(v.has_value());
  return ReconstructVersion(*v, stats);
}

std::vector<VersionNum> VersionedDocument::SnapshotVersions() const {
  std::vector<VersionNum> versions;
  versions.reserve(snapshots_.size());
  for (const auto& [v, tree] : snapshots_) versions.push_back(v);
  return versions;
}

size_t VersionedDocument::CurrentBytes() const {
  if (current_ == nullptr) return 0;
  return EncodeNodeToString(*current_).size();
}

size_t VersionedDocument::DeltaBytes() const {
  size_t total = 0;
  std::string buf;
  for (const EditScript& delta : deltas_) {
    buf.clear();
    delta.EncodeTo(&buf);
    total += buf.size();
  }
  return total;
}

size_t VersionedDocument::SnapshotBytes() const {
  size_t total = 0;
  for (const auto& [v, tree] : snapshots_) {
    total += EncodeNodeToString(*tree).size();
  }
  return total;
}

void VersionedDocument::EncodeTo(std::string* dst) const {
  PutVarint32(dst, doc_id_);
  PutLengthPrefixed(dst, url_);
  PutVarint32(dst, snapshot_every_);
  PutVarint32(dst, xids_.next());
  PutVarintSigned64(dst, delete_ts_.micros());
  delta_index_.EncodeTo(dst);
  PutVarint32(dst, current_ != nullptr ? 1 : 0);
  if (current_ != nullptr) EncodeNode(*current_, dst);
  PutVarint64(dst, deltas_.size());
  for (const EditScript& delta : deltas_) {
    std::string buf;
    delta.EncodeTo(&buf);
    PutLengthPrefixed(dst, buf);
  }
  PutVarint64(dst, snapshots_.size());
  for (const auto& [v, tree] : snapshots_) {
    PutVarint32(dst, v);
    EncodeNode(*tree, dst);
  }
}

StatusOr<std::unique_ptr<VersionedDocument>> VersionedDocument::Decode(
    std::string_view data) {
  Decoder decoder(data);
  auto doc_id = decoder.ReadVarint32();
  if (!doc_id.ok()) return doc_id.status();
  auto url = decoder.ReadLengthPrefixed();
  if (!url.ok()) return url.status();
  auto snapshot_every = decoder.ReadVarint32();
  if (!snapshot_every.ok()) return snapshot_every.status();
  auto next_xid = decoder.ReadVarint32();
  if (!next_xid.ok()) return next_xid.status();
  auto delete_ts = decoder.ReadVarintSigned64();
  if (!delete_ts.ok()) return delete_ts.status();

  auto doc = std::make_unique<VersionedDocument>(
      *doc_id, std::string(*url), *snapshot_every);
  doc->xids_ = XidAllocator(*next_xid);
  doc->delete_ts_ = Timestamp::FromMicros(*delete_ts);

  auto index = DeltaIndex::Decode(&decoder);
  if (!index.ok()) return index.status();
  doc->delta_index_ = std::move(*index);

  auto has_current = decoder.ReadVarint32();
  if (!has_current.ok()) return has_current.status();
  if (*has_current != 0) {
    auto current = DecodeNode(&decoder);
    if (!current.ok()) return current.status();
    doc->current_ = std::move(*current);
  }

  auto delta_count = decoder.ReadVarint64();
  if (!delta_count.ok()) return delta_count.status();
  if (doc->delta_index_.version_count() !=
      (*has_current != 0 ? *delta_count + 1 : 0)) {
    return Status::Corruption("delta chain length does not match index");
  }
  for (uint64_t i = 0; i < *delta_count; ++i) {
    auto buf = decoder.ReadLengthPrefixed();
    if (!buf.ok()) return buf.status();
    auto delta = EditScript::Decode(*buf);
    if (!delta.ok()) return delta.status();
    doc->deltas_.push_back(std::move(*delta));
  }

  auto snapshot_count = decoder.ReadVarint64();
  if (!snapshot_count.ok()) return snapshot_count.status();
  for (uint64_t i = 0; i < *snapshot_count; ++i) {
    auto v = decoder.ReadVarint32();
    if (!v.ok()) return v.status();
    auto tree = DecodeNode(&decoder);
    if (!tree.ok()) return tree.status();
    doc->snapshots_[*v] = std::move(*tree);
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after versioned document");
  }
  return doc;
}

}  // namespace txml
