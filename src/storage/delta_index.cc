#include "src/storage/delta_index.h"

#include <algorithm>

namespace txml {

std::optional<VersionNum> DeltaIndex::VersionAt(Timestamp t) const {
  // First stamp strictly greater than t; the version before it is valid.
  auto it = std::upper_bound(stamps_.begin(), stamps_.end(), t);
  if (it == stamps_.begin()) return std::nullopt;
  return static_cast<VersionNum>(first_version_ - 1 +
                                 (it - stamps_.begin()));
}

std::optional<Timestamp> DeltaIndex::PreviousTS(Timestamp ts) const {
  auto v = VersionAt(ts);
  if (!v.has_value() || *v <= first_version_) return std::nullopt;
  return TimestampOf(*v - 1);
}

std::optional<Timestamp> DeltaIndex::NextTS(Timestamp ts) const {
  auto v = VersionAt(ts);
  if (!v.has_value()) {
    // Before the first version: the "next" is the first.
    return stamps_.empty() ? std::nullopt
                           : std::optional<Timestamp>(stamps_.front());
  }
  if (*v >= version_count()) return std::nullopt;
  return TimestampOf(*v + 1);
}

void DeltaIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, stamps_.size());
  int64_t prev = 0;
  for (Timestamp ts : stamps_) {
    // Delta-encode: stamps are increasing, so gaps are small varints.
    PutVarintSigned64(dst, ts.micros() - prev);
    prev = ts.micros();
  }
}

StatusOr<DeltaIndex> DeltaIndex::Decode(Decoder* decoder) {
  auto count = decoder->ReadVarint64();
  if (!count.ok()) return count.status();
  DeltaIndex index;
  int64_t prev = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto gap = decoder->ReadVarintSigned64();
    if (!gap.ok()) return gap.status();
    prev += *gap;
    index.Append(Timestamp::FromMicros(prev));
  }
  return index;
}

}  // namespace txml
