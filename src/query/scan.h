#ifndef TXML_SRC_QUERY_SCAN_H_
#define TXML_SRC_QUERY_SCAN_H_

#include <vector>

#include "src/query/context.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/pattern.h"

namespace txml {

/// One result of a pattern-scan operator: an embedding of the pattern into
/// one document, valid over a (maximal) run of consecutive versions.
///
///  * For snapshot scans (PatternScan / TPatternScan) the run is the single
///    version valid at the scan time.
///  * For TPatternScanAll the run is the maximal version range over which
///    this embedding holds — adjacent versions where every pattern node's
///    occurrence is unchanged collapse into one match, which is what makes
///    history scans proportional to change volume.
struct ScanMatch {
  DocId doc_id = 0;
  /// Version run [first_version, end_version).
  VersionNum first_version = 0;
  VersionNum end_version = 0;
  /// Time validity of the run: [commit ts of first version, commit ts of
  /// end version), capped by the document delete time; open-ended for
  /// still-current matches.
  TimeInterval validity;
  /// Matched element XID per pattern-node id, and its root-to-element path.
  std::vector<Xid> elements;
  std::vector<std::vector<Xid>> paths;

  /// The TEID of the projected node (Section 6.1: operators output sets of
  /// TEIDs). The timestamp is the start of the run's validity.
  Teid ProjectedTeid(const Pattern& pattern) const {
    int id = pattern.ProjectedId();
    return Teid{Eid{doc_id, id >= 0 ? elements[static_cast<size_t>(id)]
                                    : kInvalidXid},
                validity.start};
  }
};

/// PatternScan over current versions only (the non-temporal operator of
/// Aguilera et al. that the temporal operators extend): FTI_lookup per
/// pattern word, then a multiway join on (document, relationship).
StatusOr<std::vector<ScanMatch>> PatternScanCurrent(const QueryContext& ctx,
                                                    const Pattern& pattern);

/// TPatternScan(Δ, pattern, t) — Section 7.3.1: like PatternScan but using
/// FTI_lookup_T, considering only entries valid at time t.
StatusOr<std::vector<ScanMatch>> TPatternScan(const QueryContext& ctx,
                                              const Pattern& pattern,
                                              Timestamp t);

/// TPatternScanAll(Δ, pattern) — Section 7.3.2: FTI_lookup_H per word and a
/// temporal multiway join — the relationship predicates plus "words in the
/// pattern valid at the same time" (non-empty version-range intersection).
StatusOr<std::vector<ScanMatch>> TPatternScanAll(const QueryContext& ctx,
                                                 const Pattern& pattern);

/// TPatternScanAll restricted to matches whose validity overlaps
/// [t1, t2) — used by range-restricted history queries.
StatusOr<std::vector<ScanMatch>> TPatternScanRange(const QueryContext& ctx,
                                                   const Pattern& pattern,
                                                   Timestamp t1,
                                                   Timestamp t2);

/// Traversal ("stratum") variants of the scans above: materialize the
/// relevant version(s) of each resolved document and evaluate the pattern
/// directly with MatchPattern — no FTI involved. They emit the same
/// ScanMatch rows (TPatternScanAllTraversal coalesces each embedding's
/// maximal run of consecutive retained versions, mirroring the posting
/// runs the index join intersects). The cost-based planner
/// (src/query/planner.h) picks between these and the index joins per
/// query; they are also each other's oracle in tests. Unlike the global
/// index scans, the traversals only visit `docs` (the FROM-resolved set —
/// the executor filters index-scan output to the same set).
StatusOr<std::vector<ScanMatch>> PatternScanCurrentTraversal(
    const QueryContext& ctx, const Pattern& pattern,
    const std::vector<const VersionedDocument*>& docs);
StatusOr<std::vector<ScanMatch>> TPatternScanTraversal(
    const QueryContext& ctx, const Pattern& pattern, Timestamp t,
    const std::vector<const VersionedDocument*>& docs);
StatusOr<std::vector<ScanMatch>> TPatternScanAllTraversal(
    const QueryContext& ctx, const Pattern& pattern,
    const std::vector<const VersionedDocument*>& docs);
StatusOr<std::vector<ScanMatch>> TPatternScanRangeTraversal(
    const QueryContext& ctx, const Pattern& pattern, Timestamp t1,
    Timestamp t2, const std::vector<const VersionedDocument*>& docs);

}  // namespace txml

#endif  // TXML_SRC_QUERY_SCAN_H_
