#ifndef TXML_SRC_QUERY_PLANNER_H_
#define TXML_SRC_QUERY_PLANNER_H_

#include <vector>

#include "src/query/context.h"
#include "src/query/time_ops.h"
#include "src/xml/pattern.h"

namespace txml {

/// How a pattern-scan operator is evaluated.
enum class ScanStrategy {
  /// Cost-based pick per query (the planner's job; the ExecOptions
  /// default).
  kAuto,
  /// FTI posting-list multiway join — the Section 7.3 algorithms.
  kIndex,
  /// Materialize each resolved document version and run MatchPattern
  /// against the tree — the "stratum" baseline the paper compares
  /// against, and the only option when no FTI is attached.
  kTraversal,
};

/// Which temporal scan the FROM item needs (affects how many versions the
/// traversal arm would have to materialize).
enum class ScanKind { kCurrent, kSnapshot, kAll, kRange };

/// One scan decision with the costs that produced it — surfaced through
/// EXPLAIN and tallied into ExecStats.
struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kIndex;  // resolved; never kAuto
  /// Candidate postings the index join would feed: Σ posting-list length
  /// (main + differential) over the pattern's terms.
  double index_cost = 0;
  /// Tree nodes the traversal would visit: Σ over resolved documents of
  /// tree size × versions materialized × reconstruction penalty.
  double traversal_cost = 0;
  /// True when an explicitly requested strategy was unavailable (no FTI
  /// attached) and the planner substituted the other one.
  bool fell_back = false;
};

/// Picks index-vs-traversal for one pattern scan from statistics the
/// engine already tracks: per-term posting-list sizes
/// (TemporalFullTextIndex::PostingCountFor, main + differential),
/// resolved-document tree sizes (next_xid as an upper bound), and history
/// depth (the retained-version chain, i.e. the post-vacuum floor).
/// `requested` != kAuto forces the choice (benchmarks pin both arms);
/// kAuto compares the two cost estimates.
ScanPlan PlanScan(const QueryContext& ctx, const Pattern& pattern,
                  ScanKind kind,
                  const std::vector<const VersionedDocument*>& docs,
                  ScanStrategy requested);

/// Resolves the CreTime/DelTime strategy of Section 7.3.6: the lifetime
/// index is O(1) per lookup with no useful cost crossover, so kAuto (and
/// kIndex) take it whenever the context has one; kIndex *without* one
/// falls back to traversal (`*fell_back` = true) instead of crashing.
LifetimeStrategy PlanLifetime(const QueryContext& ctx,
                              LifetimeStrategy requested, bool* fell_back);

/// Display name for EXPLAIN output ("index" / "traversal" / "auto").
const char* ScanStrategyName(ScanStrategy strategy);

}  // namespace txml

#endif  // TXML_SRC_QUERY_PLANNER_H_
