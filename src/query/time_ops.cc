#include "src/query/time_ops.h"

#include "src/util/logging.h"

namespace txml {
namespace {

bool SubtreeContainsXid(const XmlNode& node, Xid xid) {
  if (node.xid() == xid) return true;
  for (const auto& child : node.children()) {
    if (SubtreeContainsXid(*child, xid)) return true;
  }
  return false;
}

StatusOr<const VersionedDocument*> DocOf(const QueryContext& ctx,
                                         const Eid& eid) {
  TXML_CHECK(ctx.store != nullptr);
  const VersionedDocument* doc = ctx.store->FindById(eid.doc_id);
  if (doc == nullptr) {
    return Status::NotFound("no document with id " +
                            std::to_string(eid.doc_id));
  }
  if (eid.xid == kInvalidXid || eid.xid >= doc->next_xid()) {
    return Status::NotFound("EID " + eid.ToString() + " was never allocated");
  }
  return doc;
}

StatusOr<VersionNum> VersionOf(const VersionedDocument& doc, Timestamp ts) {
  auto v = doc.delta_index().VersionAt(ts);
  if (!v.has_value()) {
    return Status::NotFound("document " + std::to_string(doc.doc_id()) +
                            " has no version at " + ts.ToString());
  }
  return *v;
}

}  // namespace

StatusOr<Timestamp> CreTime(const QueryContext& ctx, const Teid& teid,
                            LifetimeStrategy strategy) {
  auto doc = DocOf(ctx, teid.eid);
  if (!doc.ok()) return doc.status();

  // kIndex (and kAuto) use the lifetime index when one is attached; a
  // request for the index without one degrades to the traversal below
  // rather than failing — §7.3.6 defines both as equivalent strategies.
  if (strategy != LifetimeStrategy::kTraversal && ctx.lifetime != nullptr) {
    auto ts = ctx.lifetime->CreTime(teid.eid);
    if (!ts.has_value()) {
      return Status::NotFound("EID " + teid.eid.ToString() +
                              " not in lifetime index");
    }
    return *ts;
  }

  // Traversal (Section 7.3.6): walk deltas backwards from the version the
  // TEID anchors, looking for the insert that introduced the element. No
  // reconstruction is necessary — this is why the operator wants a TEID
  // with its timestamp rather than a bare EID.
  // After a vacuum only retained transitions exist; an insert inside a
  // merged (coarsened) delta yields the retained endpoint's timestamp — a
  // coarser answer, which is exactly the precision the retention policy
  // traded away. The lifetime index (default on) keeps exact times.
  auto v = VersionOf(**doc, teid.timestamp);
  if (!v.ok()) return v.status();
  VersionNum i = (*doc)->SnapToRetained(*v);
  if (i == 0) i = (*doc)->first_retained();
  while (i > (*doc)->first_retained()) {
    VersionNum prev = (*doc)->PrevRetained(i);
    // The retained transition out of `prev` produced version i.
    const EditScript& delta = (*doc)->RetainedTransition(prev);
    for (const EditOp& op : delta.ops()) {
      if (op.kind == EditOp::Kind::kInsert &&
          SubtreeContainsXid(*op.subtree, teid.eid.xid)) {
        return (*doc)->delta_index().TimestampOf(i);
      }
    }
    i = prev;
  }
  // Not introduced by any retained delta below the anchor: the element has
  // existed since the oldest retained version.
  return (*doc)->delta_index().TimestampOf((*doc)->first_retained());
}

StatusOr<std::optional<Timestamp>> DelTime(const QueryContext& ctx,
                                           const Teid& teid,
                                           LifetimeStrategy strategy) {
  auto doc = DocOf(ctx, teid.eid);
  if (!doc.ok()) return doc.status();

  if (strategy != LifetimeStrategy::kTraversal && ctx.lifetime != nullptr) {
    return ctx.lifetime->DelTime(teid.eid);
  }

  // If the element is still in the last stored version, its delete time is
  // the document's delete time (if deleted) or it is still alive.
  if (SubtreeContainsXid(*(*doc)->current(), teid.eid.xid)) {
    if ((*doc)->deleted()) {
      return std::optional<Timestamp>((*doc)->delete_time());
    }
    return std::optional<Timestamp>();
  }

  // Otherwise traverse the deltas forward from the anchored version until
  // the delete that removed it (Section 7.3.6).
  auto v = VersionOf(**doc, teid.timestamp);
  if (!v.ok()) return v.status();
  for (VersionNum i = (*doc)->SnapToRetained(*v);
       i != 0 && i < (*doc)->version_count(); i = (*doc)->NextRetained(i)) {
    const EditScript& delta = (*doc)->RetainedTransition(i);
    for (const EditOp& op : delta.ops()) {
      if (op.kind == EditOp::Kind::kDelete &&
          SubtreeContainsXid(*op.subtree, teid.eid.xid)) {
        // For a merged delta this is the retained endpoint's timestamp —
        // the coarsest delete time consistent with the retained history.
        return std::optional<Timestamp>(
            (*doc)->delta_index().TimestampOf((*doc)->NextRetained(i)));
      }
    }
  }
  return Status::NotFound("element " + teid.eid.ToString() +
                          " not present at " + teid.timestamp.ToString());
}

StatusOr<std::optional<Timestamp>> PreviousTS(const QueryContext& ctx,
                                              const Teid& teid) {
  auto doc = DocOf(ctx, teid.eid);
  if (!doc.ok()) return doc.status();
  return (*doc)->delta_index().PreviousTS(teid.timestamp);
}

StatusOr<std::optional<Timestamp>> NextTS(const QueryContext& ctx,
                                          const Teid& teid) {
  auto doc = DocOf(ctx, teid.eid);
  if (!doc.ok()) return doc.status();
  return (*doc)->delta_index().NextTS(teid.timestamp);
}

StatusOr<std::optional<Timestamp>> CurrentTS(const QueryContext& ctx,
                                             const Eid& eid) {
  auto doc = DocOf(ctx, eid);
  if (!doc.ok()) return doc.status();
  if ((*doc)->deleted()) return std::optional<Timestamp>();
  return (*doc)->delta_index().CurrentTS();
}

}  // namespace txml
