#ifndef TXML_SRC_QUERY_TIME_OPS_H_
#define TXML_SRC_QUERY_TIME_OPS_H_

#include <optional>

#include "src/query/context.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"

namespace txml {

/// How CreTime/DelTime are evaluated — the two strategies of
/// Section 7.3.6.
enum class LifetimeStrategy {
  /// Traverse the document's delta chain looking for the operation that
  /// introduced/removed the element. No reconstruction needed, but cost
  /// grows with the number of deltas between the TEID's version and the
  /// create/delete point.
  kTraversal,
  /// O(1) lookup in the auxiliary EID -> (create, delete) index. Degrades
  /// to traversal when ctx.lifetime is absent (PlanLifetime in
  /// src/query/planner.h records the fallback).
  kIndex,
  /// Resolved per query by the planner: the index whenever one is
  /// attached, traversal otherwise.
  kAuto,
};

/// CreTime(TEID): transaction time at which the element was created. The
/// timestamp in the TEID anchors the backward traversal (the reason the
/// operator takes a TEID rather than a bare EID — Section 6.1). NotFound if
/// the element does not exist in the version at the TEID's timestamp.
StatusOr<Timestamp> CreTime(const QueryContext& ctx, const Teid& teid,
                            LifetimeStrategy strategy);

/// DelTime(TEID): transaction time at which the element was deleted —
/// nullopt if it is still alive. Forward traversal from the TEID's version,
/// or the document's delete time if the element survived to the end
/// (Section 7.3.6).
StatusOr<std::optional<Timestamp>> DelTime(const QueryContext& ctx,
                                           const Teid& teid,
                                           LifetimeStrategy strategy);

/// PreviousTS / NextTS / CurrentTS — Section 7.3.7: pure delta-index
/// lookups. Given one element version, the timestamp of the document
/// version preceding/following it, or of the current version. nullopt when
/// there is no such version.
StatusOr<std::optional<Timestamp>> PreviousTS(const QueryContext& ctx,
                                              const Teid& teid);
StatusOr<std::optional<Timestamp>> NextTS(const QueryContext& ctx,
                                          const Teid& teid);
StatusOr<std::optional<Timestamp>> CurrentTS(const QueryContext& ctx,
                                             const Eid& eid);

}  // namespace txml

#endif  // TXML_SRC_QUERY_TIME_OPS_H_
