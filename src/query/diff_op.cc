#include "src/query/diff_op.h"

#include <memory>

#include "src/diff/diff.h"
#include "src/query/history_ops.h"
#include "src/util/macros.h"

namespace txml {

StatusOr<XmlDocument> DiffTreesOp(const XmlNode& from, const XmlNode& to) {
  // Work on scratch copies with scratch XIDs: the edit script addresses
  // nodes of the operand trees, not repository state.
  std::unique_ptr<XmlNode> old_tree = from.Clone();
  std::unique_ptr<XmlNode> new_tree = to.Clone();
  XidAllocator scratch;
  AssignFreshXids(old_tree.get(), &scratch);
  std::vector<XmlNode*> stack = {new_tree.get()};
  while (!stack.empty()) {
    XmlNode* node = stack.back();
    stack.pop_back();
    node->set_xid(kInvalidXid);
    for (size_t i = 0; i < node->child_count(); ++i) {
      stack.push_back(node->child(i));
    }
  }
  TXML_ASSIGN_OR_RETURN(
      DiffResult result,
      DiffTrees(*old_tree, new_tree.get(), &scratch, to.timestamp()));
  return result.script.ToXml();
}

StatusOr<XmlDocument> DiffOp(const QueryContext& ctx, const Teid& from,
                             const Teid& to) {
  TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> old_tree,
                        Reconstruct(ctx, from));
  TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> new_tree,
                        Reconstruct(ctx, to));
  if (from.eid == to.eid) {
    // Same element: XIDs are already aligned across the two versions, so
    // the native differ can work on them directly — matched nodes are the
    // ones with equal XIDs, and the script is expressed in the element's
    // persistent identifiers.
    const VersionedDocument* doc = ctx.store->FindById(from.eid.doc_id);
    XidAllocator scratch(doc->next_xid());
    std::unique_ptr<XmlNode> new_copy = new_tree->Clone();
    std::vector<XmlNode*> stack = {new_copy.get()};
    while (!stack.empty()) {
      XmlNode* node = stack.back();
      stack.pop_back();
      node->set_xid(kInvalidXid);
      for (size_t i = 0; i < node->child_count(); ++i) {
        stack.push_back(node->child(i));
      }
    }
    TXML_ASSIGN_OR_RETURN(
        DiffResult result,
        DiffTrees(*old_tree, new_copy.get(), &scratch, to.timestamp));
    return result.script.ToXml();
  }
  return DiffTreesOp(*old_tree, *new_tree);
}

}  // namespace txml
