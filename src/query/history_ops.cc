#include "src/query/history_ops.h"

#include <utility>

#include "src/diff/matcher.h"
#include "src/util/logging.h"
#include "src/util/macros.h"

namespace txml {
namespace {

/// Visits the versions of `doc` whose validity overlaps [t1, t2), most
/// recent first (Section 7.3.4: the algorithm outputs the history
/// backwards). The newest needed version is reconstructed once; older
/// versions are produced by applying one backward delta each — O(range)
/// delta applications total. The visited tree is transient: callbacks must
/// clone what they keep.
template <typename Fn>
Status WalkVersionsBackward(const VersionedDocument& doc, Timestamp t1,
                            Timestamp t2, Fn&& visit) {
  // Only retained versions are visited: after a vacuum, a coarse-kept
  // version's validity covers its coarsened-away successors, and nothing
  // below first_retained() exists any more (PrevRetained returns 0 there).
  VersionNum hi = 0;
  for (VersionNum v = doc.version_count(); v != 0; v = doc.PrevRetained(v)) {
    TimeInterval validity = doc.RetainedValidity(v);
    if (validity.start < t2 && validity.start < validity.end) {
      hi = v;
      break;
    }
  }
  if (hi == 0 || doc.RetainedValidity(hi).end <= t1) return Status::OK();

  TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> tree,
                        doc.ReconstructVersion(hi));
  for (VersionNum v = hi; v != 0;) {
    TimeInterval validity = doc.RetainedValidity(v);
    if (validity.end <= t1) break;  // older versions end even earlier
    visit(v, validity, *tree);
    VersionNum prev = doc.PrevRetained(v);
    if (prev == 0) break;
    TXML_RETURN_IF_ERROR(
        doc.RetainedTransition(prev).ApplyBackward(tree.get()));
    v = prev;
  }
  return Status::OK();
}

}  // namespace

Status WalkDocumentVersionsBackward(
    const VersionedDocument& doc, Timestamp t1, Timestamp t2,
    const std::function<void(VersionNum, const TimeInterval&,
                             const XmlNode&)>& visit) {
  return WalkVersionsBackward(doc, t1, t2, visit);
}

StatusOr<std::unique_ptr<XmlNode>> Reconstruct(const QueryContext& ctx,
                                               const Teid& teid) {
  TXML_CHECK(ctx.store != nullptr);
  const VersionedDocument* doc = ctx.store->FindById(teid.eid.doc_id);
  if (doc == nullptr) {
    return Status::NotFound("no document with id " +
                            std::to_string(teid.eid.doc_id));
  }
  TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> tree,
                        doc->ReconstructAt(teid.timestamp));
  if (tree->xid() == teid.eid.xid) return tree;
  const XmlNode* element = tree->FindByXid(teid.eid.xid);
  if (element == nullptr) {
    return Status::NotFound("element " + teid.eid.ToString() +
                            " does not exist at " + teid.timestamp.ToString());
  }
  return element->Clone();
}

StatusOr<std::vector<MaterializedVersion>> DocHistory(const QueryContext& ctx,
                                                      DocId doc_id,
                                                      Timestamp t1,
                                                      Timestamp t2) {
  TXML_CHECK(ctx.store != nullptr);
  if (t2 <= t1) {
    return Status::InvalidArgument("empty history interval [" +
                                   t1.ToString() + ", " + t2.ToString() + ")");
  }
  const VersionedDocument* doc = ctx.store->FindById(doc_id);
  if (doc == nullptr) {
    return Status::NotFound("no document with id " + std::to_string(doc_id));
  }
  std::vector<MaterializedVersion> history;
  TXML_RETURN_IF_ERROR(WalkVersionsBackward(
      *doc, t1, t2, [&](VersionNum /*v*/, const TimeInterval& validity,
                        const XmlNode& tree) {
        history.push_back(MaterializedVersion{
            Teid{Eid{doc_id, tree.xid()}, validity.start}, validity,
            tree.Clone()});
      }));
  return history;
}

StatusOr<std::vector<MaterializedVersion>> ElementHistory(
    const QueryContext& ctx, const Eid& eid, Timestamp t1, Timestamp t2) {
  // Section 7.3.5: DocHistory filtered to the subtree rooted at the EID —
  // "even if it was possible to optimize this so that only the desired
  // subtrees are reconstructed, the whole deltas would have to be read
  // anyway". We do apply whole deltas, but clone only the element.
  TXML_CHECK(ctx.store != nullptr);
  if (t2 <= t1) {
    return Status::InvalidArgument("empty history interval [" +
                                   t1.ToString() + ", " + t2.ToString() + ")");
  }
  const VersionedDocument* doc = ctx.store->FindById(eid.doc_id);
  if (doc == nullptr) {
    return Status::NotFound("no document with id " +
                            std::to_string(eid.doc_id));
  }
  std::vector<MaterializedVersion> history;
  uint64_t previous_hash = 0;
  bool previous_present = false;
  TXML_RETURN_IF_ERROR(WalkVersionsBackward(
      *doc, t1, t2, [&](VersionNum /*v*/, const TimeInterval& validity,
                        const XmlNode& tree) {
        const XmlNode* element =
            tree.xid() == eid.xid ? &tree : tree.FindByXid(eid.xid);
        if (element == nullptr) {
          previous_present = false;
          return;
        }
        uint64_t hash = SubtreeHash(*element);
        if (previous_present && !history.empty() && hash == previous_hash) {
          // Unchanged from the (more recent) neighbouring version: extend
          // that entry's validity backwards — same element version.
          history.back().validity.start = validity.start;
          history.back().teid.timestamp = element->timestamp();
        } else {
          history.push_back(MaterializedVersion{
              Teid{eid, element->timestamp()}, validity, element->Clone()});
        }
        previous_hash = hash;
        previous_present = true;
      }));
  return history;
}

}  // namespace txml
