#ifndef TXML_SRC_QUERY_CONTEXT_H_
#define TXML_SRC_QUERY_CONTEXT_H_

#include "src/index/fti.h"
#include "src/index/lifetime_index.h"
#include "src/query/snapshot_cache.h"
#include "src/storage/store.h"

namespace txml {

/// Everything a query operator needs to run: the repository (current
/// versions, delta chains, delta indexes) and the access structures of
/// Section 7. Non-owning; the database façade owns the real objects.
struct QueryContext {
  const VersionedDocumentStore* store = nullptr;
  const TemporalFullTextIndex* fti = nullptr;
  /// Optional: when null, CreTime/DelTime fall back to delta-chain
  /// traversal (the first strategy of Section 7.3.6).
  const LifetimeIndex* lifetime = nullptr;
  /// Optional shared memoization of reconstructed snapshots. Non-const:
  /// lookups update recency and insert entries, but implementations are
  /// internally synchronized, so the pointer is safe to share across
  /// concurrent reader threads.
  SnapshotCacheInterface* snapshot_cache = nullptr;
};

}  // namespace txml

#endif  // TXML_SRC_QUERY_CONTEXT_H_
