#ifndef TXML_SRC_QUERY_HISTORY_OPS_H_
#define TXML_SRC_QUERY_HISTORY_OPS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/query/context.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// One materialized version of a document or element.
struct MaterializedVersion {
  Teid teid;
  TimeInterval validity;
  std::unique_ptr<XmlNode> tree;
};

/// Reconstruct(TEID) — Section 7.3.3: materializes the subtree rooted at
/// the TEID's EID in the version valid at the TEID's timestamp. Deltas are
/// applied backwards from the current version (or from the oldest snapshot
/// at or after the target). NotFound if the document does not exist at that
/// time or the element is not present in that version.
StatusOr<std::unique_ptr<XmlNode>> Reconstruct(const QueryContext& ctx,
                                               const Teid& teid);

/// DocHistory(document, t1, t2) — Section 7.3.4: all versions of the
/// document valid in [t1, t2), *most recent first* (the paper notes the
/// algorithm naturally outputs the history backwards). TEIDs are the
/// document roots.
StatusOr<std::vector<MaterializedVersion>> DocHistory(const QueryContext& ctx,
                                                      DocId doc_id,
                                                      Timestamp t1,
                                                      Timestamp t2);

/// Low-level history walker: visits the versions of `doc` whose validity
/// overlaps [t1, t2), *most recent first*. The newest needed version is
/// reconstructed once; older versions are produced by applying one
/// backward delta each, so a walk over k versions costs k delta
/// applications total. The visited tree is transient — callbacks must
/// clone whatever they keep. This is the engine under DocHistory /
/// ElementHistory and the executor's [EVERY] binding, which shares one
/// walk across all elements of a document (the paper's future-work goal
/// of "reducing the number of delta versions that have to be retrieved").
Status WalkDocumentVersionsBackward(
    const VersionedDocument& doc, Timestamp t1, Timestamp t2,
    const std::function<void(VersionNum, const TimeInterval&,
                             const XmlNode&)>& visit);

/// ElementHistory(EID, t1, t2) — Section 7.3.5: DocHistory filtered to the
/// subtree rooted at the EID; versions where the element does not exist
/// are skipped. Most recent first. Consecutive versions in which the
/// element's subtree is unchanged are collapsed into one entry whose
/// validity spans the run (one element version, as the data model sees it).
StatusOr<std::vector<MaterializedVersion>> ElementHistory(
    const QueryContext& ctx, const Eid& eid, Timestamp t1, Timestamp t2);

}  // namespace txml

#endif  // TXML_SRC_QUERY_HISTORY_OPS_H_
