#include "src/query/planner.h"

namespace txml {
namespace {

/// Reconstructing a non-current snapshot replays a delta chain and
/// allocates a fresh tree; weight relative to walking an already
/// materialized one. Calibrated coarsely from E14's reconstruction
/// microbenchmarks — the decision only needs the right order of
/// magnitude, not the right constant.
constexpr double kReconstructPenalty = 3.0;

size_t RetainedVersionCount(const VersionedDocument& doc) {
  size_t count = 0;
  for (VersionNum v = doc.first_retained();
       v != 0 && v <= doc.version_count(); v = doc.NextRetained(v)) {
    ++count;
  }
  return count;
}

}  // namespace

ScanPlan PlanScan(const QueryContext& ctx, const Pattern& pattern,
                  ScanKind kind,
                  const std::vector<const VersionedDocument*>& docs,
                  ScanStrategy requested) {
  ScanPlan plan;
  const bool have_index = ctx.fti != nullptr;

  // Index arm: candidate postings fed into the multiway join. The FTI is
  // global, so posting counts span *all* documents — which is exactly why
  // a single-document query over a hot term can lose to traversal.
  if (have_index) {
    for (const PatternNode* node : pattern.NodesPreorder()) {
      TermKind term_kind = node->test == PatternNode::Test::kElementName
                               ? TermKind::kElementName
                               : TermKind::kWord;
      plan.index_cost += static_cast<double>(
          ctx.fti->PostingCountFor(term_kind, node->term));
    }
  }

  // Traversal arm: nodes visited across every version the scan has to
  // materialize. next_xid() caps how many nodes a document ever held, and
  // the retained chain is the post-vacuum history depth.
  for (const VersionedDocument* doc : docs) {
    const double per_version = static_cast<double>(doc->next_xid());
    switch (kind) {
      case ScanKind::kCurrent:
        if (!doc->deleted()) plan.traversal_cost += per_version;
        break;
      case ScanKind::kSnapshot:
        plan.traversal_cost += per_version * kReconstructPenalty;
        break;
      case ScanKind::kAll:
      case ScanKind::kRange:
        plan.traversal_cost += per_version * kReconstructPenalty *
                               static_cast<double>(RetainedVersionCount(*doc));
        break;
    }
  }

  switch (requested) {
    case ScanStrategy::kIndex:
      plan.strategy = ScanStrategy::kIndex;
      if (!have_index) {
        plan.strategy = ScanStrategy::kTraversal;
        plan.fell_back = true;
      }
      break;
    case ScanStrategy::kTraversal:
      plan.strategy = ScanStrategy::kTraversal;
      break;
    case ScanStrategy::kAuto:
      // Ties go to the index: its join prunes by document and version
      // range early, while the traversal estimate is an upper bound.
      plan.strategy = have_index && plan.index_cost <= plan.traversal_cost
                          ? ScanStrategy::kIndex
                          : ScanStrategy::kTraversal;
      break;
  }
  return plan;
}

LifetimeStrategy PlanLifetime(const QueryContext& ctx,
                              LifetimeStrategy requested, bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  if (requested == LifetimeStrategy::kTraversal) {
    return LifetimeStrategy::kTraversal;
  }
  if (ctx.lifetime != nullptr) return LifetimeStrategy::kIndex;
  if (requested == LifetimeStrategy::kIndex && fell_back != nullptr) {
    *fell_back = true;
  }
  return LifetimeStrategy::kTraversal;
}

const char* ScanStrategyName(ScanStrategy strategy) {
  switch (strategy) {
    case ScanStrategy::kAuto:
      return "auto";
    case ScanStrategy::kIndex:
      return "index";
    case ScanStrategy::kTraversal:
      return "traversal";
  }
  return "?";
}

}  // namespace txml
