#include "src/query/scan.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/index/posting.h"
#include "src/util/coding.h"
#include "src/util/logging.h"

namespace txml {
namespace {

/// Per-document candidate postings for every pattern node.
using DocCandidates = std::map<DocId, std::vector<std::vector<const Posting*>>>;

/// Pattern nodes in id order plus each node's parent id (-1 for the root).
struct PatternShape {
  std::vector<const PatternNode*> nodes;
  std::vector<int> parent;
};

PatternShape ShapeOf(const Pattern& pattern) {
  PatternShape shape;
  shape.nodes = pattern.NodesPreorder();
  shape.parent.assign(shape.nodes.size(), -1);
  for (const PatternNode* node : shape.nodes) {
    for (const auto& child : node->children) {
      shape.parent[static_cast<size_t>(child->id)] = node->id;
    }
  }
  return shape;
}

/// Does `child` stand in the node's axis relationship to `parent`?
bool AxisHolds(PatternNode::Axis axis, const Posting& parent,
               const Posting& child) {
  switch (axis) {
    case PatternNode::Axis::kSelf:
      return parent.path == child.path;
    case PatternNode::Axis::kChild:
      return PathIsParentOf(parent.path, child.path);
    case PatternNode::Axis::kDescendant:
      return PathIsAncestorOf(parent.path, child.path);
    case PatternNode::Axis::kDescendantOrSelf:
      return parent.path == child.path ||
             PathIsAncestorOf(parent.path, child.path);
  }
  return false;
}

/// Root axis is interpreted against the document node: kSelf/kChild bind
/// the document's root element, kDescendant anything strictly below it,
/// kDescendantOrSelf anything.
bool RootAxisHolds(PatternNode::Axis axis, const Posting& posting) {
  switch (axis) {
    case PatternNode::Axis::kSelf:
    case PatternNode::Axis::kChild:
      return posting.path.size() == 1;
    case PatternNode::Axis::kDescendant:
      return posting.path.size() > 1;
    case PatternNode::Axis::kDescendantOrSelf:
      return true;
  }
  return false;
}

/// Resolves each match's version run to its time validity through the
/// delta indexes — shared by the index joins and the traversal scans so
/// both emit byte-identical intervals.
void ResolveValidity(const QueryContext& ctx, std::vector<ScanMatch>* out) {
  for (ScanMatch& match : *out) {
    const VersionedDocument* doc = ctx.store->FindById(match.doc_id);
    TXML_CHECK(doc != nullptr);
    match.validity.start = doc->delta_index().TimestampOf(match.first_version);
    if (match.end_version != kOpenVersion &&
        match.end_version <= doc->version_count()) {
      match.validity.end = doc->delta_index().TimestampOf(match.end_version);
    } else {
      // Open-ended run, or a run closed by document deletion.
      match.validity.end = doc->delete_time();
    }
  }
}

struct VersionRun {
  VersionNum start;
  VersionNum end;  // exclusive; kOpenVersion while current
  bool Intersect(const Posting& posting) {
    if (posting.start > start) start = posting.start;
    if (posting.end < end) end = posting.end;
    return start < end;
  }
};

/// Recursive multiway join within one document: picks a posting for every
/// pattern node such that all axis predicates hold and the version ranges
/// intersect (the "temporal join" of Section 7.3.2).
class DocJoiner {
 public:
  DocJoiner(const PatternShape& shape,
            const std::vector<std::vector<const Posting*>>& candidates,
            std::vector<ScanMatch>* out)
      : shape_(shape), candidates_(candidates), out_(out) {
    chosen_.resize(shape.nodes.size(), nullptr);
  }

  void Run() {
    VersionRun run{0, kOpenVersion};
    Extend(0, run);
  }

 private:
  void Extend(size_t node_idx, VersionRun run) {
    if (node_idx == shape_.nodes.size()) {
      Emit(run);
      return;
    }
    const PatternNode& pnode = *shape_.nodes[node_idx];
    int parent_id = shape_.parent[node_idx];
    for (const Posting* posting : candidates_[node_idx]) {
      if (parent_id < 0) {
        if (!RootAxisHolds(pnode.axis, *posting)) continue;
      } else {
        const Posting& parent = *chosen_[static_cast<size_t>(parent_id)];
        if (!AxisHolds(pnode.axis, parent, *posting)) continue;
      }
      VersionRun next = run;
      if (!next.Intersect(*posting)) continue;
      chosen_[node_idx] = posting;
      Extend(node_idx + 1, next);
      chosen_[node_idx] = nullptr;
    }
  }

  void Emit(const VersionRun& run) {
    ScanMatch match;
    match.doc_id = chosen_[0]->doc_id;
    match.first_version = run.start;
    match.end_version = run.end;
    match.elements.reserve(chosen_.size());
    match.paths.reserve(chosen_.size());
    for (const Posting* posting : chosen_) {
      match.elements.push_back(posting->element);
      match.paths.push_back(posting->path);
    }
    out_->push_back(std::move(match));
  }

  const PatternShape& shape_;
  const std::vector<std::vector<const Posting*>>& candidates_;
  std::vector<ScanMatch>* out_;
  std::vector<const Posting*> chosen_;
};

/// Looks up postings per pattern node with `lookup`, groups them by
/// document, joins per document, then resolves version runs to time
/// intervals through the delta indexes.
template <typename LookupFn>
StatusOr<std::vector<ScanMatch>> ScanWith(const QueryContext& ctx,
                                          const Pattern& pattern,
                                          LookupFn lookup) {
  std::vector<ScanMatch> results;
  if (pattern.empty()) return results;
  TXML_CHECK(ctx.store != nullptr && ctx.fti != nullptr);

  PatternShape shape = ShapeOf(pattern);
  size_t node_count = shape.nodes.size();

  DocCandidates by_doc;
  for (size_t i = 0; i < node_count; ++i) {
    const PatternNode& pnode = *shape.nodes[i];
    TermKind kind = pnode.test == PatternNode::Test::kElementName
                        ? TermKind::kElementName
                        : TermKind::kWord;
    for (const Posting* posting : lookup(kind, pnode.term)) {
      auto& lists = by_doc[posting->doc_id];
      if (lists.empty()) lists.resize(node_count);
      lists[i].push_back(posting);
    }
  }

  for (auto& [doc_id, lists] : by_doc) {
    // Every pattern node needs at least one candidate in this document.
    bool complete = true;
    for (const auto& list : lists) {
      if (list.empty()) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    DocJoiner(shape, lists, &results).Run();
  }

  ResolveValidity(ctx, &results);
  return results;
}

}  // namespace

StatusOr<std::vector<ScanMatch>> PatternScanCurrent(const QueryContext& ctx,
                                                    const Pattern& pattern) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupCurrent(kind, term);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScan(const QueryContext& ctx,
                                              const Pattern& pattern,
                                              Timestamp t) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupT(kind, term, t);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScanAll(const QueryContext& ctx,
                                                 const Pattern& pattern) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupH(kind, term);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScanRange(const QueryContext& ctx,
                                                   const Pattern& pattern,
                                                   Timestamp t1,
                                                   Timestamp t2) {
  auto all = TPatternScanAll(ctx, pattern);
  if (!all.ok()) return all.status();
  TimeInterval window{t1, t2};
  std::vector<ScanMatch> filtered;
  for (ScanMatch& match : *all) {
    if (match.validity.Overlaps(window)) {
      filtered.push_back(std::move(match));
    }
  }
  return filtered;
}

namespace {

/// Root-to-element XID path of every element in a tree. Word occurrences
/// attach to their containing element, so element paths cover every
/// pattern node's match.
void BuildPaths(const XmlNode& node, std::vector<Xid>* trail,
                std::unordered_map<const XmlNode*, std::vector<Xid>>* paths) {
  trail->push_back(node.xid());
  (*paths)[&node] = *trail;
  for (const auto& child : node.children()) {
    if (child->is_element()) BuildPaths(*child, trail, paths);
  }
  trail->pop_back();
}

/// One MatchPattern embedding rendered into ScanMatch element/path
/// columns, plus a fingerprint for run coalescing across versions (the
/// paths determine the elements — each path ends in its element — and a
/// moved element changes path, closing its run, exactly like the FTI's
/// occurrence keys).
struct EmbeddingRow {
  std::vector<Xid> elements;
  std::vector<std::vector<Xid>> paths;
  std::string key;
};

std::vector<EmbeddingRow> EmbeddingsOf(const XmlNode& root,
                                       const Pattern& pattern) {
  std::unordered_map<const XmlNode*, std::vector<Xid>> paths;
  std::vector<Xid> trail;
  BuildPaths(root, &trail, &paths);
  std::vector<EmbeddingRow> rows;
  for (const PatternMatch& match : MatchPattern(root, pattern)) {
    EmbeddingRow row;
    row.elements.reserve(match.size());
    row.paths.reserve(match.size());
    for (const XmlNode* node : match) {
      row.elements.push_back(node->xid());
      row.paths.push_back(paths.at(node));
    }
    for (const auto& path : row.paths) {
      PutVarint64(&row.key, path.size());
      for (Xid xid : path) PutVarint32(&row.key, xid);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The materialized tree of one retained version, preferring the shared
/// snapshot cache; the current version aliases storage directly (cheap,
/// and safe for the duration of the scan) and is never inserted into the
/// cache (cached trees must be owned — see SnapshotCacheInterface).
StatusOr<std::shared_ptr<const XmlNode>> SnapshotTree(
    const QueryContext& ctx, const VersionedDocument& doc, VersionNum v) {
  if (v == doc.version_count() && !doc.deleted()) {
    return std::shared_ptr<const XmlNode>(doc.current(),
                                          [](const XmlNode*) {});
  }
  if (ctx.snapshot_cache != nullptr) {
    if (auto hit = ctx.snapshot_cache->Lookup(doc.doc_id(), v)) return hit;
  }
  auto tree = doc.ReconstructVersion(v);
  if (!tree.ok()) return tree.status();
  std::shared_ptr<const XmlNode> shared(std::move(*tree));
  if (ctx.snapshot_cache != nullptr) {
    ctx.snapshot_cache->Insert(doc.doc_id(), v, shared);
  }
  return shared;
}

}  // namespace

StatusOr<std::vector<ScanMatch>> PatternScanCurrentTraversal(
    const QueryContext& ctx, const Pattern& pattern,
    const std::vector<const VersionedDocument*>& docs) {
  std::vector<ScanMatch> results;
  if (pattern.empty()) return results;
  TXML_CHECK(ctx.store != nullptr);
  for (const VersionedDocument* doc : docs) {
    if (doc->deleted() || doc->current() == nullptr) continue;
    for (EmbeddingRow& row : EmbeddingsOf(*doc->current(), pattern)) {
      ScanMatch match;
      match.doc_id = doc->doc_id();
      match.first_version = doc->version_count();
      match.end_version = kOpenVersion;
      match.elements = std::move(row.elements);
      match.paths = std::move(row.paths);
      results.push_back(std::move(match));
    }
  }
  ResolveValidity(ctx, &results);
  return results;
}

StatusOr<std::vector<ScanMatch>> TPatternScanTraversal(
    const QueryContext& ctx, const Pattern& pattern, Timestamp t,
    const std::vector<const VersionedDocument*>& docs) {
  std::vector<ScanMatch> results;
  if (pattern.empty()) return results;
  TXML_CHECK(ctx.store != nullptr);
  for (const VersionedDocument* doc : docs) {
    if (!doc->ExistsAt(t)) continue;
    auto version = doc->delta_index().VersionAt(t);
    if (!version.has_value()) continue;
    // As in FTI_lookup_T: the snapshot presented for t is the nearest
    // *retained* version.
    const VersionNum v = doc->SnapToRetained(*version);
    if (v == 0) continue;
    auto tree = SnapshotTree(ctx, *doc, v);
    if (!tree.ok()) return tree.status();
    const VersionNum next = doc->NextRetained(v);
    for (EmbeddingRow& row : EmbeddingsOf(**tree, pattern)) {
      ScanMatch match;
      match.doc_id = doc->doc_id();
      match.first_version = v;
      match.end_version = next != 0 ? next : kOpenVersion;
      match.elements = std::move(row.elements);
      match.paths = std::move(row.paths);
      results.push_back(std::move(match));
    }
  }
  ResolveValidity(ctx, &results);
  return results;
}

StatusOr<std::vector<ScanMatch>> TPatternScanAllTraversal(
    const QueryContext& ctx, const Pattern& pattern,
    const std::vector<const VersionedDocument*>& docs) {
  std::vector<ScanMatch> results;
  if (pattern.empty()) return results;
  TXML_CHECK(ctx.store != nullptr);
  for (const VersionedDocument* doc : docs) {
    // Walk the retained chain in order, coalescing each embedding's
    // maximal run of consecutive versions — the traversal mirror of the
    // version ranges the index join intersects.
    struct PendingRun {
      VersionNum first;
      std::vector<Xid> elements;
      std::vector<std::vector<Xid>> paths;
    };
    std::map<std::string, PendingRun> open_runs;
    for (VersionNum v = doc->first_retained();
         v != 0 && v <= doc->version_count(); v = doc->NextRetained(v)) {
      auto tree = SnapshotTree(ctx, *doc, v);
      if (!tree.ok()) return tree.status();
      std::unordered_set<std::string> present;
      for (EmbeddingRow& row : EmbeddingsOf(**tree, pattern)) {
        present.insert(row.key);
        if (!open_runs.contains(row.key)) {
          open_runs.emplace(std::move(row.key),
                            PendingRun{v, std::move(row.elements),
                                       std::move(row.paths)});
        }
      }
      for (auto it = open_runs.begin(); it != open_runs.end();) {
        if (present.contains(it->first)) {
          ++it;
          continue;
        }
        ScanMatch match;
        match.doc_id = doc->doc_id();
        match.first_version = it->second.first;
        match.end_version = v;
        match.elements = std::move(it->second.elements);
        match.paths = std::move(it->second.paths);
        results.push_back(std::move(match));
        it = open_runs.erase(it);
      }
    }
    // Runs alive through the last retained version: open-ended for live
    // documents, closed just past the last version for deleted ones —
    // matching how OnDocumentDeleted closes postings.
    for (auto& [key, run] : open_runs) {
      ScanMatch match;
      match.doc_id = doc->doc_id();
      match.first_version = run.first;
      match.end_version =
          doc->deleted() ? doc->version_count() + 1 : kOpenVersion;
      match.elements = std::move(run.elements);
      match.paths = std::move(run.paths);
      results.push_back(std::move(match));
    }
  }
  ResolveValidity(ctx, &results);
  return results;
}

StatusOr<std::vector<ScanMatch>> TPatternScanRangeTraversal(
    const QueryContext& ctx, const Pattern& pattern, Timestamp t1,
    Timestamp t2, const std::vector<const VersionedDocument*>& docs) {
  auto all = TPatternScanAllTraversal(ctx, pattern, docs);
  if (!all.ok()) return all.status();
  TimeInterval window{t1, t2};
  std::vector<ScanMatch> filtered;
  for (ScanMatch& match : *all) {
    if (match.validity.Overlaps(window)) {
      filtered.push_back(std::move(match));
    }
  }
  return filtered;
}

}  // namespace txml
