#include "src/query/scan.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "src/index/posting.h"
#include "src/util/logging.h"

namespace txml {
namespace {

/// Per-document candidate postings for every pattern node.
using DocCandidates = std::map<DocId, std::vector<std::vector<const Posting*>>>;

/// Pattern nodes in id order plus each node's parent id (-1 for the root).
struct PatternShape {
  std::vector<const PatternNode*> nodes;
  std::vector<int> parent;
};

PatternShape ShapeOf(const Pattern& pattern) {
  PatternShape shape;
  shape.nodes = pattern.NodesPreorder();
  shape.parent.assign(shape.nodes.size(), -1);
  for (const PatternNode* node : shape.nodes) {
    for (const auto& child : node->children) {
      shape.parent[static_cast<size_t>(child->id)] = node->id;
    }
  }
  return shape;
}

/// Does `child` stand in the node's axis relationship to `parent`?
bool AxisHolds(PatternNode::Axis axis, const Posting& parent,
               const Posting& child) {
  switch (axis) {
    case PatternNode::Axis::kSelf:
      return parent.path == child.path;
    case PatternNode::Axis::kChild:
      return PathIsParentOf(parent.path, child.path);
    case PatternNode::Axis::kDescendant:
      return PathIsAncestorOf(parent.path, child.path);
    case PatternNode::Axis::kDescendantOrSelf:
      return parent.path == child.path ||
             PathIsAncestorOf(parent.path, child.path);
  }
  return false;
}

/// Root axis is interpreted against the document node: kSelf/kChild bind
/// the document's root element, kDescendant anything strictly below it,
/// kDescendantOrSelf anything.
bool RootAxisHolds(PatternNode::Axis axis, const Posting& posting) {
  switch (axis) {
    case PatternNode::Axis::kSelf:
    case PatternNode::Axis::kChild:
      return posting.path.size() == 1;
    case PatternNode::Axis::kDescendant:
      return posting.path.size() > 1;
    case PatternNode::Axis::kDescendantOrSelf:
      return true;
  }
  return false;
}

struct VersionRun {
  VersionNum start;
  VersionNum end;  // exclusive; kOpenVersion while current
  bool Intersect(const Posting& posting) {
    if (posting.start > start) start = posting.start;
    if (posting.end < end) end = posting.end;
    return start < end;
  }
};

/// Recursive multiway join within one document: picks a posting for every
/// pattern node such that all axis predicates hold and the version ranges
/// intersect (the "temporal join" of Section 7.3.2).
class DocJoiner {
 public:
  DocJoiner(const PatternShape& shape,
            const std::vector<std::vector<const Posting*>>& candidates,
            std::vector<ScanMatch>* out)
      : shape_(shape), candidates_(candidates), out_(out) {
    chosen_.resize(shape.nodes.size(), nullptr);
  }

  void Run() {
    VersionRun run{0, kOpenVersion};
    Extend(0, run);
  }

 private:
  void Extend(size_t node_idx, VersionRun run) {
    if (node_idx == shape_.nodes.size()) {
      Emit(run);
      return;
    }
    const PatternNode& pnode = *shape_.nodes[node_idx];
    int parent_id = shape_.parent[node_idx];
    for (const Posting* posting : candidates_[node_idx]) {
      if (parent_id < 0) {
        if (!RootAxisHolds(pnode.axis, *posting)) continue;
      } else {
        const Posting& parent = *chosen_[static_cast<size_t>(parent_id)];
        if (!AxisHolds(pnode.axis, parent, *posting)) continue;
      }
      VersionRun next = run;
      if (!next.Intersect(*posting)) continue;
      chosen_[node_idx] = posting;
      Extend(node_idx + 1, next);
      chosen_[node_idx] = nullptr;
    }
  }

  void Emit(const VersionRun& run) {
    ScanMatch match;
    match.doc_id = chosen_[0]->doc_id;
    match.first_version = run.start;
    match.end_version = run.end;
    match.elements.reserve(chosen_.size());
    match.paths.reserve(chosen_.size());
    for (const Posting* posting : chosen_) {
      match.elements.push_back(posting->element);
      match.paths.push_back(posting->path);
    }
    out_->push_back(std::move(match));
  }

  const PatternShape& shape_;
  const std::vector<std::vector<const Posting*>>& candidates_;
  std::vector<ScanMatch>* out_;
  std::vector<const Posting*> chosen_;
};

/// Looks up postings per pattern node with `lookup`, groups them by
/// document, joins per document, then resolves version runs to time
/// intervals through the delta indexes.
template <typename LookupFn>
StatusOr<std::vector<ScanMatch>> ScanWith(const QueryContext& ctx,
                                          const Pattern& pattern,
                                          LookupFn lookup) {
  std::vector<ScanMatch> results;
  if (pattern.empty()) return results;
  TXML_CHECK(ctx.store != nullptr && ctx.fti != nullptr);

  PatternShape shape = ShapeOf(pattern);
  size_t node_count = shape.nodes.size();

  DocCandidates by_doc;
  for (size_t i = 0; i < node_count; ++i) {
    const PatternNode& pnode = *shape.nodes[i];
    TermKind kind = pnode.test == PatternNode::Test::kElementName
                        ? TermKind::kElementName
                        : TermKind::kWord;
    for (const Posting* posting : lookup(kind, pnode.term)) {
      auto& lists = by_doc[posting->doc_id];
      if (lists.empty()) lists.resize(node_count);
      lists[i].push_back(posting);
    }
  }

  for (auto& [doc_id, lists] : by_doc) {
    // Every pattern node needs at least one candidate in this document.
    bool complete = true;
    for (const auto& list : lists) {
      if (list.empty()) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    DocJoiner(shape, lists, &results).Run();
  }

  // Resolve version runs to time validity.
  for (ScanMatch& match : results) {
    const VersionedDocument* doc = ctx.store->FindById(match.doc_id);
    TXML_CHECK(doc != nullptr);
    match.validity.start = doc->delta_index().TimestampOf(match.first_version);
    if (match.end_version != kOpenVersion &&
        match.end_version <= doc->version_count()) {
      match.validity.end = doc->delta_index().TimestampOf(match.end_version);
    } else {
      // Open-ended run, or a run closed by document deletion.
      match.validity.end = doc->delete_time();
    }
  }
  return results;
}

}  // namespace

StatusOr<std::vector<ScanMatch>> PatternScanCurrent(const QueryContext& ctx,
                                                    const Pattern& pattern) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupCurrent(kind, term);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScan(const QueryContext& ctx,
                                              const Pattern& pattern,
                                              Timestamp t) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupT(kind, term, t);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScanAll(const QueryContext& ctx,
                                                 const Pattern& pattern) {
  return ScanWith(ctx, pattern, [&](TermKind kind, const std::string& term) {
    return ctx.fti->LookupH(kind, term);
  });
}

StatusOr<std::vector<ScanMatch>> TPatternScanRange(const QueryContext& ctx,
                                                   const Pattern& pattern,
                                                   Timestamp t1,
                                                   Timestamp t2) {
  auto all = TPatternScanAll(ctx, pattern);
  if (!all.ok()) return all.status();
  TimeInterval window{t1, t2};
  std::vector<ScanMatch> filtered;
  for (ScanMatch& match : *all) {
    if (match.validity.Overlaps(window)) {
      filtered.push_back(std::move(match));
    }
  }
  return filtered;
}

}  // namespace txml
