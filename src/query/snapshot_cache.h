#ifndef TXML_SRC_QUERY_SNAPSHOT_CACHE_H_
#define TXML_SRC_QUERY_SNAPSHOT_CACHE_H_

#include <memory>

#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// Memoization point for reconstructed document snapshots, consulted by
/// query execution before applying a delta chain. Keys are
/// (DocId, version number); both are never reused, and a committed
/// version's tree is immutable, so an entry can never go stale — a cache
/// may drop entries at any time (capacity, invalidation policy) but must
/// never serve a tree that differs from ReconstructVersion's result.
///
/// Cached trees are shared across executions (and, in the service layer,
/// across threads), so they must be *owned* deep trees: implementations
/// must not alias storage-owned nodes such as VersionedDocument::current(),
/// which the next append mutates.
///
/// Implementations must be safe for concurrent Lookup/Insert from many
/// reader threads; the sharded LRU cache of src/service/ is the production
/// implementation.
class SnapshotCacheInterface {
 public:
  virtual ~SnapshotCacheInterface() = default;

  /// The cached tree of (doc, version), or null on a miss.
  virtual std::shared_ptr<const XmlNode> Lookup(DocId doc_id,
                                                VersionNum version) = 0;

  /// Offers a freshly materialized tree for (doc, version). The cache may
  /// adopt or ignore it.
  virtual void Insert(DocId doc_id, VersionNum version,
                      std::shared_ptr<const XmlNode> tree) = 0;
};

}  // namespace txml

#endif  // TXML_SRC_QUERY_SNAPSHOT_CACHE_H_
