#ifndef TXML_SRC_QUERY_DIFF_OP_H_
#define TXML_SRC_QUERY_DIFF_OP_H_

#include "src/query/context.h"
#include "src/util/statusor.h"
#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// Diff(E1, E2) — Section 6.1/7.3.9: the changes between two element
/// versions, returned as an *edit script represented as an XML tree* so
/// query closure is preserved ("as long as an edit script is represented
/// in XML this operator does not break closure properties of queries").
/// E1 and E2 may be versions of the same element, or entirely different
/// elements/documents/subtrees.
StatusOr<XmlDocument> DiffOp(const QueryContext& ctx, const Teid& from,
                             const Teid& to);

/// Diff of two already-materialized trees (used when operands come from an
/// enclosing query rather than the store).
StatusOr<XmlDocument> DiffTreesOp(const XmlNode& from, const XmlNode& to);

}  // namespace txml

#endif  // TXML_SRC_QUERY_DIFF_OP_H_
