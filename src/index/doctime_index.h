#ifndef TXML_SRC_INDEX_DOCTIME_INDEX_H_
#define TXML_SRC_INDEX_DOCTIME_INDEX_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/storage/store.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"
#include "src/xml/path.h"

namespace txml {

/// The *document time* of Section 3.1's third case: "Many documents
/// include a timestamp in the document itself ... for example the time the
/// document was written, or when it was posted" (the paper points at
/// XMLNews-Meta/RDF publication metadata). Documents can then be "indexed
/// and queried based on this document time", which is valid-time-like and
/// independent of the transaction-time version history.
///
/// This index extracts the timestamp from each stored version via a
/// configured location path (e.g. `//published` or `/article/@date`),
/// parses it leniently (dd/mm/yyyy or ISO), and supports range retrieval:
/// "documents posted in the last week" regardless of when they were
/// crawled. Versions without a parseable document time are simply absent.
class DocumentTimeIndex : public StoreObserver {
 public:
  explicit DocumentTimeIndex(PathExpr path) : path_(std::move(path)) {}

  // StoreObserver:
  void OnVersionStored(DocId doc_id, VersionNum version, Timestamp ts,
                       const XmlNode& current,
                       const EditScript* delta) override;
  void OnDocumentDeleted(DocId doc_id, VersionNum last,
                         Timestamp ts) override;
  /// Drops entries for versions the vacuum removed (a range scan must not
  /// hand out versions that no longer reconstruct).
  void OnHistoryVacuumed(const VersionedDocument& doc) override;

  struct Entry {
    Timestamp doc_time;
    DocId doc_id;
    VersionNum version;

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  /// All (document, version) pairs whose document time lies in [t1, t2),
  /// ordered by document time.
  std::vector<Entry> Between(Timestamp t1, Timestamp t2) const;

  /// The document time recorded for one stored version, if any.
  std::optional<Timestamp> DocTimeOf(DocId doc_id, VersionNum version) const;

  size_t entry_count() const { return by_version_.size(); }
  const PathExpr& path() const { return path_; }

 private:
  PathExpr path_;
  /// Ordered by document time for range scans.
  std::multimap<Timestamp, std::pair<DocId, VersionNum>> by_time_;
  std::map<std::pair<DocId, VersionNum>, Timestamp> by_version_;
};

}  // namespace txml

#endif  // TXML_SRC_INDEX_DOCTIME_INDEX_H_
