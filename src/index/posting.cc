#include "src/index/posting.h"

#include <set>
#include <tuple>
#include <utility>

#include "src/util/strings.h"

namespace txml {
namespace {

using OccKey = std::tuple<TermKind, std::string, Xid>;

void Extract(const XmlNode& node, std::vector<Xid>* path,
             std::set<OccKey>* seen, std::vector<Occurrence>* out) {
  if (!node.is_element()) return;
  path->push_back(node.xid());

  auto emit = [&](TermKind kind, std::string term) {
    OccKey key{kind, term, node.xid()};
    if (!seen->insert(key).second) return;
    out->push_back(Occurrence{kind, std::move(term), node.xid(), *path});
  };

  emit(TermKind::kElementName, ToLower(node.name()));
  for (const auto& child : node.children()) {
    if (child->is_attribute()) {
      // Attribute names are searchable words but must not satisfy element
      // tag tests, so they join the word vocabulary.
      emit(TermKind::kWord, ToLower(child->name()));
      for (std::string& token : TokenizeWords(child->value())) {
        emit(TermKind::kWord, std::move(token));
      }
    } else if (child->is_text()) {
      for (std::string& token : TokenizeWords(child->value())) {
        emit(TermKind::kWord, std::move(token));
      }
    }
  }
  for (const auto& child : node.children()) {
    Extract(*child, path, seen, out);
  }
  path->pop_back();
}

}  // namespace

std::vector<Occurrence> ExtractOccurrences(const XmlNode& root) {
  std::vector<Occurrence> out;
  std::vector<Xid> path;
  std::set<OccKey> seen;
  Extract(root, &path, &seen, &out);
  return out;
}

bool PathIsParentOf(const std::vector<Xid>& parent,
                    const std::vector<Xid>& child) {
  if (child.size() != parent.size() + 1) return false;
  for (size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] != child[i]) return false;
  }
  return true;
}

bool PathIsAncestorOf(const std::vector<Xid>& ancestor,
                      const std::vector<Xid>& descendant) {
  if (descendant.size() <= ancestor.size()) return false;
  for (size_t i = 0; i < ancestor.size(); ++i) {
    if (ancestor[i] != descendant[i]) return false;
  }
  return true;
}

}  // namespace txml
