#include "src/index/doctime_index.h"

#include "src/util/strings.h"

namespace txml {

void DocumentTimeIndex::OnVersionStored(DocId doc_id, VersionNum version,
                                        Timestamp /*ts*/,
                                        const XmlNode& current,
                                        const EditScript* /*delta*/) {
  std::vector<const XmlNode*> nodes = path_.Evaluate(current);
  for (const XmlNode* node : nodes) {
    std::string text(
        Trim(node->is_attribute() ? node->value() : node->TextContent()));
    auto parsed = Timestamp::ParseFlexible(text);
    if (!parsed.ok()) continue;  // unparseable metadata: skip, don't fail
    by_time_.emplace(*parsed, std::make_pair(doc_id, version));
    by_version_[{doc_id, version}] = *parsed;
    return;  // first parseable occurrence wins
  }
}

void DocumentTimeIndex::OnDocumentDeleted(DocId /*doc_id*/,
                                          VersionNum /*last*/,
                                          Timestamp /*ts*/) {
  // Document time describes content, not storage lifecycle: entries for
  // historical versions stay queryable after the document is deleted.
}

std::vector<DocumentTimeIndex::Entry> DocumentTimeIndex::Between(
    Timestamp t1, Timestamp t2) const {
  std::vector<Entry> entries;
  for (auto it = by_time_.lower_bound(t1);
       it != by_time_.end() && it->first < t2; ++it) {
    entries.push_back(Entry{it->first, it->second.first, it->second.second});
  }
  return entries;
}

std::optional<Timestamp> DocumentTimeIndex::DocTimeOf(
    DocId doc_id, VersionNum version) const {
  auto it = by_version_.find({doc_id, version});
  if (it == by_version_.end()) return std::nullopt;
  return it->second;
}

}  // namespace txml
