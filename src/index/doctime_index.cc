#include "src/index/doctime_index.h"

#include "src/util/strings.h"

namespace txml {

void DocumentTimeIndex::OnVersionStored(DocId doc_id, VersionNum version,
                                        Timestamp /*ts*/,
                                        const XmlNode& current,
                                        const EditScript* /*delta*/) {
  std::vector<const XmlNode*> nodes = path_.Evaluate(current);
  for (const XmlNode* node : nodes) {
    std::string text(
        Trim(node->is_attribute() ? node->value() : node->TextContent()));
    auto parsed = Timestamp::ParseFlexible(text);
    if (!parsed.ok()) continue;  // unparseable metadata: skip, don't fail
    by_time_.emplace(*parsed, std::make_pair(doc_id, version));
    by_version_[{doc_id, version}] = *parsed;
    return;  // first parseable occurrence wins
  }
}

void DocumentTimeIndex::OnDocumentDeleted(DocId /*doc_id*/,
                                          VersionNum /*last*/,
                                          Timestamp /*ts*/) {
  // Document time describes content, not storage lifecycle: entries for
  // historical versions stay queryable after the document is deleted.
}

void DocumentTimeIndex::OnHistoryVacuumed(const VersionedDocument& doc) {
  const DocId doc_id = doc.doc_id();
  auto lo = by_version_.lower_bound({doc_id, 0});
  for (auto it = lo; it != by_version_.end() && it->first.first == doc_id;) {
    if (doc.IsRetained(it->first.second)) {
      ++it;
      continue;
    }
    const std::pair<DocId, VersionNum> key = it->first;
    auto [t_lo, t_hi] = by_time_.equal_range(it->second);
    for (auto t_it = t_lo; t_it != t_hi; ++t_it) {
      if (t_it->second == key) {
        by_time_.erase(t_it);
        break;
      }
    }
    it = by_version_.erase(it);
  }
}

std::vector<DocumentTimeIndex::Entry> DocumentTimeIndex::Between(
    Timestamp t1, Timestamp t2) const {
  std::vector<Entry> entries;
  for (auto it = by_time_.lower_bound(t1);
       it != by_time_.end() && it->first < t2; ++it) {
    entries.push_back(Entry{it->first, it->second.first, it->second.second});
  }
  return entries;
}

std::optional<Timestamp> DocumentTimeIndex::DocTimeOf(
    DocId doc_id, VersionNum version) const {
  auto it = by_version_.find({doc_id, version});
  if (it == by_version_.end()) return std::nullopt;
  return it->second;
}

}  // namespace txml
