#ifndef TXML_SRC_INDEX_POSTING_H_
#define TXML_SRC_INDEX_POSTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/xml/ids.h"
#include "src/xml/node.h"

namespace txml {

/// Vocabulary partition of the FTI. Element (and attribute) names live in
/// the same index as text words — "this index indexes all words in the
/// documents, including element names" (Section 7.2) — but the two are
/// distinguishable so a pattern can ask for the element <name> rather than
/// the word "name".
enum class TermKind : uint8_t {
  kElementName = 0,
  kWord = 1,
};

/// Marks a posting that is still valid in the current version.
constexpr VersionNum kOpenVersion = UINT32_MAX;

/// One entry of a temporal posting list: an occurrence of a term in a
/// document, valid for the version range [start, end) (end == kOpenVersion
/// while current). The occurrence is attached to its directly-containing
/// element and carries the root-to-element XID path — "information that can
/// be used to determine hierarchical relationships between elements from
/// the same document" (Section 7.2). Parent/ancestor join predicates become
/// prefix tests on these paths. Timestamps are deliberately absent: version
/// numbers map to timestamps through the per-document delta index
/// (Section 7.1).
struct Posting {
  DocId doc_id = 0;
  /// XID of the element the occurrence is attached to (for an element-name
  /// occurrence: the element itself).
  Xid element = kInvalidXid;
  /// XIDs from the root down to `element`, inclusive.
  std::vector<Xid> path;
  VersionNum start = 0;
  VersionNum end = kOpenVersion;

  bool OpenEnded() const { return end == kOpenVersion; }

  /// True if the occurrence is valid in version v.
  bool ValidAt(VersionNum v) const { return start <= v && v < end; }
};

/// A term occurrence extracted from one version of a document (no validity
/// yet — the index assigns version ranges by diffing consecutive
/// occurrence sets).
struct Occurrence {
  TermKind kind;
  std::string term;
  Xid element;
  std::vector<Xid> path;

  bool operator==(const Occurrence&) const = default;
};

/// Extracts the full, de-duplicated occurrence set of a version:
///  * every element contributes its (lower-cased) tag name;
///  * attribute names, attribute values and direct text content are word
///    occurrences on the owning element (attribute names deliberately do
///    not satisfy element tag tests).
std::vector<Occurrence> ExtractOccurrences(const XmlNode& root);

/// Relationship tests on XID paths (the join predicates of Section 7.3.1).
bool PathIsParentOf(const std::vector<Xid>& parent,
                    const std::vector<Xid>& child);
bool PathIsAncestorOf(const std::vector<Xid>& ancestor,
                      const std::vector<Xid>& descendant);

}  // namespace txml

#endif  // TXML_SRC_INDEX_POSTING_H_
