#ifndef TXML_SRC_INDEX_DELTA_FTI_H_
#define TXML_SRC_INDEX_DELTA_FTI_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/index/posting.h"
#include "src/storage/store.h"

namespace txml {

/// Alternative B of Section 7.2: *index the contents of the delta objects*
/// — the index records change events ("word appeared in element e at
/// version v" / "word disappeared at version v") instead of validity
/// intervals.
///
/// The paper predicts, and the E3 benchmark confirms, the asymmetry:
/// change-oriented queries ("when was Napoli deleted from the guide?") are
/// direct event lookups, but snapshot queries must fold all events up to
/// the target version to recover the valid occurrence set — cost grows
/// with history length rather than snapshot size.
class DeltaContentIndex : public StoreObserver {
 public:
  enum class Event : uint8_t { kAdded = 0, kRemoved = 1 };

  struct EventPosting {
    DocId doc_id = 0;
    Xid element = kInvalidXid;
    std::vector<Xid> path;
    VersionNum version = 0;
    Event event = Event::kAdded;
  };

  // StoreObserver:
  void OnVersionStored(DocId doc_id, VersionNum version, Timestamp ts,
                       const XmlNode& current,
                       const EditScript* delta) override;
  void OnDocumentDeleted(DocId doc_id, VersionNum last,
                         Timestamp ts) override;
  /// Compacts event runs that fully cancel below the document's drop
  /// horizon (an add/remove pair entirely in dropped history is
  /// unobservable from any retained version). Coarse-zone events are kept:
  /// they still fold correctly for every retained snapshot version.
  void OnHistoryVacuumed(const VersionedDocument& doc) override;

  /// Change query: all add/remove events for a term (optionally filtered
  /// by event kind by the caller). This is the cheap direction.
  std::vector<const EventPosting*> LookupEvents(TermKind kind,
                                                std::string_view term) const;

  /// Snapshot query: occurrences of the term valid at version v of each
  /// document — computed by folding the event list (the expensive
  /// direction). `version_of` maps doc id -> snapshot version (0 = absent).
  std::vector<EventPosting> LookupSnapshot(
      TermKind kind, std::string_view term,
      const std::unordered_map<DocId, VersionNum>& version_of) const;

  size_t term_count() const { return names_.size() + words_.size(); }
  size_t posting_count() const;
  size_t EncodedSizeBytes() const;

 private:
  using EventMap =
      std::unordered_map<std::string, std::vector<EventPosting>>;

  EventMap& MapFor(TermKind kind) {
    return kind == TermKind::kElementName ? names_ : words_;
  }
  const EventMap& MapFor(TermKind kind) const {
    return kind == TermKind::kElementName ? names_ : words_;
  }

  EventMap names_;
  EventMap words_;
  /// Previous occurrence keys per document, to derive events.
  std::unordered_map<DocId, std::unordered_map<std::string, Occurrence>>
      previous_;
};

}  // namespace txml

#endif  // TXML_SRC_INDEX_DELTA_FTI_H_
