#include "src/index/lifetime_index.h"

#include <memory>

#include "src/util/coding.h"

namespace txml {
namespace {

void CollectXids(const XmlNode& node, std::unordered_set<Xid>* out) {
  if (node.xid() != kInvalidXid) out->insert(node.xid());
  for (const auto& child : node.children()) {
    CollectXids(*child, out);
  }
}

}  // namespace

void LifetimeIndex::OnVersionStored(DocId doc_id, VersionNum /*version*/,
                                    Timestamp ts, const XmlNode& current,
                                    const EditScript* /*delta*/) {
  std::unordered_set<Xid> now;
  CollectXids(current, &now);
  std::unordered_set<Xid>& before = alive_[doc_id];

  for (Xid xid : now) {
    if (!before.contains(xid)) {
      lifetimes_[Eid{doc_id, xid}] = Lifetime{ts, Timestamp::Infinity()};
    }
  }
  for (Xid xid : before) {
    if (!now.contains(xid)) {
      lifetimes_[Eid{doc_id, xid}].del = ts;
    }
  }
  before = std::move(now);
}

void LifetimeIndex::OnDocumentDeleted(DocId doc_id, VersionNum /*last*/,
                                      Timestamp ts) {
  auto it = alive_.find(doc_id);
  if (it == alive_.end()) return;
  for (Xid xid : it->second) {
    lifetimes_[Eid{doc_id, xid}].del = ts;
  }
  alive_.erase(it);
}

void LifetimeIndex::OnHistoryVacuumed(const VersionedDocument& doc) {
  if (doc.first_retained() <= 1 || doc.version_count() == 0) {
    return;  // coarsen-only vacuum: every element stays reachable
  }
  const Timestamp horizon =
      doc.delta_index().TimestampOf(doc.first_retained());
  const DocId doc_id = doc.doc_id();
  std::erase_if(lifetimes_, [&](const auto& entry) {
    return entry.first.doc_id == doc_id && entry.second.del <= horizon;
  });
}

std::optional<Timestamp> LifetimeIndex::CreTime(const Eid& eid) const {
  auto it = lifetimes_.find(eid);
  if (it == lifetimes_.end()) return std::nullopt;
  return it->second.create;
}

std::optional<Timestamp> LifetimeIndex::DelTime(const Eid& eid) const {
  auto it = lifetimes_.find(eid);
  if (it == lifetimes_.end() || it->second.del.IsInfinite()) {
    return std::nullopt;
  }
  return it->second.del;
}

bool LifetimeIndex::IsAlive(const Eid& eid) const {
  auto it = lifetimes_.find(eid);
  return it != lifetimes_.end() && it->second.del.IsInfinite();
}

void LifetimeIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, lifetimes_.size());
  for (const auto& [eid, lifetime] : lifetimes_) {
    PutVarint32(dst, eid.doc_id);
    PutVarint32(dst, eid.xid);
    PutVarintSigned64(dst, lifetime.create.micros());
    PutVarintSigned64(dst, lifetime.del.micros());
  }
}

StatusOr<std::unique_ptr<LifetimeIndex>> LifetimeIndex::Decode(
    std::string_view data) {
  auto index = std::make_unique<LifetimeIndex>();
  Decoder decoder(data);
  auto count = decoder.ReadVarint64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto doc = decoder.ReadVarint32();
    if (!doc.ok()) return doc.status();
    auto xid = decoder.ReadVarint32();
    if (!xid.ok()) return xid.status();
    auto create = decoder.ReadVarintSigned64();
    if (!create.ok()) return create.status();
    auto del = decoder.ReadVarintSigned64();
    if (!del.ok()) return del.status();
    Eid eid{*doc, *xid};
    Lifetime lifetime{Timestamp::FromMicros(*create),
                      Timestamp::FromMicros(*del)};
    if (lifetime.del.IsInfinite()) {
      index->alive_[eid.doc_id].insert(eid.xid);
    }
    index->lifetimes_[eid] = lifetime;
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after lifetime index");
  }
  return index;
}

}  // namespace txml
