#ifndef TXML_SRC_INDEX_DIFFERENTIAL_FTI_H_
#define TXML_SRC_INDEX_DIFFERENTIAL_FTI_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/posting.h"

namespace txml {

/// The write-side half of the split temporal FTI (DESIGN.md §13), after
/// RDF-3X's differential-index architecture: commits append new postings
/// here instead of into the compacted main posting lists, so the work
/// serialized inside the commit path is proportional to the *change*, not
/// to the accumulated index. Lookups merge main + differential at query
/// time; TemporalFullTextIndex::CompactDifferential periodically folds the
/// accumulated adds into the main lists and clears this.
///
/// Append-only between compactions: postings are only ever added at the
/// tail of a term's list, so an (term, index) pair handed out by Append
/// stays valid until Clear(). Closing a differential posting is an
/// in-place write to its `end` field through At() — it never moves.
///
/// Not internally synchronized: the owning index's writer/compactor
/// exclusion (the service commit lock) covers it.
class DifferentialFti {
 public:
  using PostingMap = std::unordered_map<std::string, std::vector<Posting>>;

  /// Appends a posting to the term's differential list and returns its
  /// index in that list (stable until Clear()).
  size_t Append(TermKind kind, std::string term, Posting posting) {
    std::vector<Posting>& list = MapFor(kind)[std::move(term)];
    list.push_back(std::move(posting));
    ++posting_count_;
    return list.size() - 1;
  }

  /// The posting previously returned by Append (for in-place end closes).
  Posting* At(TermKind kind, const std::string& term, size_t index) {
    return &MapFor(kind).at(term)[index];
  }

  /// The term's differential list, or null. `term` must be lower-cased
  /// already (terms are stored lower-cased, as in the main index).
  const std::vector<Posting>* Find(TermKind kind,
                                   const std::string& term) const {
    const PostingMap& map = MapFor(kind);
    auto it = map.find(term);
    return it == map.end() ? nullptr : &it->second;
  }

  PostingMap& MapFor(TermKind kind) {
    return kind == TermKind::kElementName ? names_ : words_;
  }
  const PostingMap& MapFor(TermKind kind) const {
    return kind == TermKind::kElementName ? names_ : words_;
  }

  size_t posting_count() const { return posting_count_; }
  bool empty() const { return posting_count_ == 0; }

  void Clear() {
    names_.clear();
    words_.clear();
    posting_count_ = 0;
  }

 private:
  PostingMap names_;
  PostingMap words_;
  size_t posting_count_ = 0;
};

}  // namespace txml

#endif  // TXML_SRC_INDEX_DIFFERENTIAL_FTI_H_
