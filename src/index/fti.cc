#include "src/index/fti.h"

#include <utility>

#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace txml {
namespace {

/// Stable string key identifying one occurrence: kind, term, element and
/// path. A moved element's occurrence changes key (its path changed), so a
/// move closes the old posting and opens a fresh one — paths stored in
/// postings stay immutable.
std::string OccurrenceKey(TermKind kind, std::string_view term, Xid element,
                          const std::vector<Xid>& path) {
  std::string key;
  key.reserve(term.size() + 2 + 5 * (path.size() + 1));
  key.push_back(static_cast<char>(kind));
  key.append(term);
  key.push_back('\0');
  PutVarint32(&key, element);
  for (Xid xid : path) PutVarint32(&key, xid);
  return key;
}

}  // namespace

Posting* TemporalFullTextIndex::PostingOf(const OpenRef& ref) {
  if (ref.in_diff) return diff_.At(ref.kind, ref.term, ref.index);
  return &MapFor(ref.kind).at(ref.term)[ref.index];
}

template <typename Fn>
void TemporalFullTextIndex::ForEachPosting(TermKind kind,
                                           const std::string& lowered,
                                           Fn&& fn) const {
  const PostingMap& main = MapFor(kind);
  if (auto it = main.find(lowered); it != main.end()) {
    for (const Posting& posting : it->second) fn(posting);
  }
  if (const std::vector<Posting>* adds = diff_.Find(kind, lowered)) {
    for (const Posting& posting : *adds) fn(posting);
  }
}

void TemporalFullTextIndex::OnVersionStored(DocId doc_id, VersionNum version,
                                            Timestamp /*ts*/,
                                            const XmlNode& current,
                                            const EditScript* /*delta*/) {
  std::vector<Occurrence> occurrences = ExtractOccurrences(current);
  auto& open = open_[doc_id];

  std::unordered_set<std::string> present;
  present.reserve(occurrences.size());
  for (Occurrence& occ : occurrences) {
    std::string key = OccurrenceKey(occ.kind, occ.term, occ.element, occ.path);
    present.insert(key);
    if (open.contains(key)) continue;  // occurrence survives, posting stays
    // New runs always open in the differential: the main lists never grow
    // between compactions, so this commit's index work is bounded by its
    // own change volume.
    size_t index = diff_.Append(
        occ.kind, occ.term,
        Posting{doc_id, occ.element, std::move(occ.path), version,
                kOpenVersion});
    open.emplace(std::move(key),
                 OpenRef{occ.kind, std::move(occ.term), index,
                         /*in_diff=*/true});
  }

  // Close postings for occurrences that vanished in this version. Closing
  // is an in-place `end` write in whichever half holds the run's posting;
  // nothing moves.
  for (auto it = open.begin(); it != open.end();) {
    if (present.contains(it->first)) {
      ++it;
      continue;
    }
    PostingOf(it->second)->end = version;
    it = open.erase(it);
  }
}

void TemporalFullTextIndex::OnDocumentDeleted(DocId doc_id, VersionNum last,
                                              Timestamp /*ts*/) {
  auto it = open_.find(doc_id);
  if (it == open_.end()) return;
  // The last version remains valid up to the delete time; postings close
  // just after it so ValidAt(last) still holds while LookupCurrent (which
  // wants open-ended postings only) no longer sees the document.
  for (auto& [key, ref] : it->second) {
    PostingOf(ref)->end = last + 1;
  }
  open_.erase(it);
}

void TemporalFullTextIndex::OnHistoryVacuumed(const VersionedDocument& doc) {
  // Fold the differential in first: the vacuum below erases and re-anchors
  // postings in place (indices shift), which is exactly what a compaction
  // boundary is for — and a vacuum pass is rare enough that forcing one
  // here costs nothing measurable.
  CompactDifferential();
  const DocId doc_id = doc.doc_id();
  bool erased_any = false;
  for (PostingMap* map : {&names_, &words_}) {
    for (auto it = map->begin(); it != map->end();) {
      std::vector<Posting>& list = it->second;
      const size_t before = list.size();
      std::erase_if(list, [&](Posting& posting) {
        if (posting.doc_id != doc_id) return false;
        VersionNum end = posting.end == kOpenVersion
                             ? doc.version_count() + 1
                             : posting.end;
        if (!doc.AnyRetainedIn(posting.start, end)) return true;
        // Coarse-zone starts keep their original version number (their
        // timestamps survive coarsening), but nothing below
        // first_retained() has a timestamp anymore.
        if (posting.start < doc.first_retained()) {
          posting.start = doc.first_retained();
        }
        return false;
      });
      erased_any |= list.size() != before;
      it = list.empty() ? map->erase(it) : std::next(it);
    }
  }
  // Erasing list entries shifts posting indices, and term vectors are
  // shared across documents — every OpenRef is suspect.
  if (erased_any) RebuildOpenRefs();
}

void TemporalFullTextIndex::CompactDifferential() {
  if (diff_.empty()) return;
  // Per (kind, term): the main list length before the fold — a
  // differential posting at index i lands at main index base + i.
  std::unordered_map<std::string, size_t> bases[2];
  for (PostingMap* map : {&names_, &words_}) {
    TermKind kind =
        map == &names_ ? TermKind::kElementName : TermKind::kWord;
    auto& base = bases[static_cast<size_t>(kind)];
    for (auto& [term, adds] : diff_.MapFor(kind)) {
      std::vector<Posting>& dst = (*map)[term];
      base.emplace(term, dst.size());
      dst.insert(dst.end(), std::make_move_iterator(adds.begin()),
                 std::make_move_iterator(adds.end()));
    }
  }
  // Re-point open refs of differential postings at their new main slots.
  // Appending after the existing entries preserved the merged iteration
  // order (main then differential), so lookups see the same sequence.
  for (auto& [doc_id, open] : open_) {
    for (auto& [key, ref] : open) {
      if (!ref.in_diff) continue;
      ref.index += bases[static_cast<size_t>(ref.kind)].at(ref.term);
      ref.in_diff = false;
    }
  }
  diff_.Clear();
  ++compactions_;
}

void TemporalFullTextIndex::RebuildOpenRefs() {
  // Only ever runs at a compaction boundary — with the differential
  // folded, open refs are rebuilt pointing into the main half.
  TXML_CHECK(diff_.empty());
  open_.clear();
  for (PostingMap* map : {&names_, &words_}) {
    TermKind kind =
        map == &names_ ? TermKind::kElementName : TermKind::kWord;
    for (auto& [term, list] : *map) {
      for (size_t p = 0; p < list.size(); ++p) {
        if (!list[p].OpenEnded()) continue;
        open_[list[p].doc_id].emplace(
            OccurrenceKey(kind, term, list[p].element, list[p].path),
            OpenRef{kind, term, p});
      }
    }
  }
}

std::vector<const Posting*> TemporalFullTextIndex::LookupCurrent(
    TermKind kind, std::string_view term) const {
  std::vector<const Posting*> result;
  ForEachPosting(kind, ToLower(term), [&](const Posting& posting) {
    if (posting.OpenEnded()) result.push_back(&posting);
  });
  return result;
}

std::vector<const Posting*> TemporalFullTextIndex::LookupT(
    TermKind kind, std::string_view term, Timestamp t) const {
  std::vector<const Posting*> result;
  // Resolve time -> version once per document touched by this list.
  std::unordered_map<DocId, VersionNum> resolved;
  ForEachPosting(kind, ToLower(term), [&](const Posting& posting) {
    auto cached = resolved.find(posting.doc_id);
    if (cached == resolved.end()) {
      VersionNum v = 0;  // 0 = document absent at t
      const VersionedDocument* doc = store_->FindById(posting.doc_id);
      if (doc != nullptr && doc->ExistsAt(t)) {
        auto version = doc->delta_index().VersionAt(t);
        // The snapshot presented for t is the nearest *retained* version
        // (identity below a coarsened horizon).
        if (version.has_value()) v = doc->SnapToRetained(*version);
      }
      cached = resolved.emplace(posting.doc_id, v).first;
    }
    if (cached->second != 0 && posting.ValidAt(cached->second)) {
      result.push_back(&posting);
    }
  });
  return result;
}

std::vector<const Posting*> TemporalFullTextIndex::LookupH(
    TermKind kind, std::string_view term) const {
  std::vector<const Posting*> result;
  ForEachPosting(kind, ToLower(term), [&](const Posting& posting) {
    result.push_back(&posting);
  });
  return result;
}

std::unique_ptr<TemporalFullTextIndex> TemporalFullTextIndex::Rebuild(
    const VersionedDocumentStore& store) {
  auto index = std::make_unique<TemporalFullTextIndex>(&store);
  for (const VersionedDocument* doc : store.AllDocuments()) {
    // Walk the retained chain only — vacuumed-away versions have no
    // timestamps and no reconstructible content.
    for (VersionNum v = doc->first_retained();
         v != 0 && v <= doc->version_count(); v = doc->NextRetained(v)) {
      auto tree = doc->ReconstructVersion(v);
      TXML_CHECK(tree.ok());
      index->OnVersionStored(doc->doc_id(), v,
                             doc->delta_index().TimestampOf(v), **tree,
                             nullptr);
    }
    if (doc->deleted()) {
      index->OnDocumentDeleted(doc->doc_id(), doc->version_count(),
                               doc->delete_time());
    }
  }
  // A rebuild *is* a full compaction — start the new generation clean.
  index->CompactDifferential();
  return index;
}

namespace {

void EncodePosting(const Posting& posting, std::string* dst) {
  PutVarint32(dst, posting.doc_id);
  PutVarint32(dst, posting.element);
  PutVarint64(dst, posting.path.size());
  Xid prev = 0;
  for (Xid xid : posting.path) {
    PutVarintSigned64(dst,
                      static_cast<int64_t>(xid) - static_cast<int64_t>(prev));
    prev = xid;
  }
  PutVarint32(dst, posting.start);
  // 0 = open-ended, otherwise run length (always >= 1).
  PutVarint32(dst, posting.end == kOpenVersion ? 0
                                               : posting.end - posting.start);
}

/// Encodes the merged (main-then-differential) list for one term; either
/// half may be null/absent.
void EncodePostingList(const std::string& term,
                       const std::vector<Posting>* main,
                       const std::vector<Posting>* adds, std::string* dst) {
  PutLengthPrefixed(dst, term);
  PutVarint64(dst, (main != nullptr ? main->size() : 0) +
                       (adds != nullptr ? adds->size() : 0));
  if (main != nullptr) {
    for (const Posting& posting : *main) EncodePosting(posting, dst);
  }
  if (adds != nullptr) {
    for (const Posting& posting : *adds) EncodePosting(posting, dst);
  }
}

StatusOr<std::pair<std::string, std::vector<Posting>>> DecodePostingList(
    Decoder* decoder) {
  auto term = decoder->ReadLengthPrefixed();
  if (!term.ok()) return term.status();
  auto count = decoder->ReadVarint64();
  if (!count.ok()) return count.status();
  std::vector<Posting> list;
  if (*count > decoder->remaining()) {
    return Status::Corruption("implausible posting count");
  }
  list.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    Posting posting;
    auto doc = decoder->ReadVarint32();
    if (!doc.ok()) return doc.status();
    posting.doc_id = *doc;
    auto element = decoder->ReadVarint32();
    if (!element.ok()) return element.status();
    posting.element = *element;
    auto path_len = decoder->ReadVarint64();
    if (!path_len.ok()) return path_len.status();
    if (*path_len > decoder->remaining()) {
      return Status::Corruption("implausible path length");
    }
    int64_t prev = 0;
    for (uint64_t p = 0; p < *path_len; ++p) {
      auto gap = decoder->ReadVarintSigned64();
      if (!gap.ok()) return gap.status();
      prev += *gap;
      posting.path.push_back(static_cast<Xid>(prev));
    }
    auto start = decoder->ReadVarint32();
    if (!start.ok()) return start.status();
    posting.start = *start;
    auto run = decoder->ReadVarint32();
    if (!run.ok()) return run.status();
    posting.end = *run == 0 ? kOpenVersion : posting.start + *run;
    list.push_back(std::move(posting));
  }
  return std::make_pair(std::string(*term), std::move(list));
}

}  // namespace

void TemporalFullTextIndex::EncodeTo(std::string* dst) const {
  // Always the *merged* view — persistence is independent of when the
  // last compaction ran, so checkpoints match across leader/follower even
  // when their compaction thresholds differ.
  for (const PostingMap* map : {&names_, &words_}) {
    TermKind kind =
        map == &names_ ? TermKind::kElementName : TermKind::kWord;
    const PostingMap& adds = diff_.MapFor(kind);
    size_t terms = map->size();
    for (const auto& [term, list] : adds) {
      if (!map->contains(term)) ++terms;
    }
    PutVarint64(dst, terms);
    for (const auto& [term, list] : *map) {
      auto it = adds.find(term);
      EncodePostingList(term, &list, it == adds.end() ? nullptr : &it->second,
                        dst);
    }
    for (const auto& [term, list] : adds) {
      if (map->contains(term)) continue;
      EncodePostingList(term, nullptr, &list, dst);
    }
  }
}

StatusOr<std::unique_ptr<TemporalFullTextIndex>> TemporalFullTextIndex::Decode(
    std::string_view data, const VersionedDocumentStore* store) {
  auto index = std::make_unique<TemporalFullTextIndex>(store);
  Decoder decoder(data);
  // Everything decodes into the main half — a load starts a fresh,
  // already-compacted generation with an empty differential.
  for (PostingMap* map : {&index->names_, &index->words_}) {
    TermKind kind = map == &index->names_ ? TermKind::kElementName
                                          : TermKind::kWord;
    auto term_count = decoder.ReadVarint64();
    if (!term_count.ok()) return term_count.status();
    for (uint64_t i = 0; i < *term_count; ++i) {
      auto list = DecodePostingList(&decoder);
      if (!list.ok()) return list.status();
      // Rebuild the open-occurrence map from open-ended postings so
      // incremental maintenance continues seamlessly.
      std::vector<Posting>& stored =
          (*map)[list->first] = std::move(list->second);
      for (size_t p = 0; p < stored.size(); ++p) {
        if (!stored[p].OpenEnded()) continue;
        std::string key = OccurrenceKey(kind, list->first,
                                        stored[p].element, stored[p].path);
        index->open_[stored[p].doc_id].emplace(
            std::move(key), OpenRef{kind, list->first, p});
      }
    }
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after FTI");
  }
  return index;
}

size_t TemporalFullTextIndex::term_count() const {
  size_t count = names_.size() + words_.size();
  for (const PostingMap* map : {&names_, &words_}) {
    TermKind kind =
        map == &names_ ? TermKind::kElementName : TermKind::kWord;
    for (const auto& [term, list] : diff_.MapFor(kind)) {
      if (!map->contains(term)) ++count;
    }
  }
  return count;
}

size_t TemporalFullTextIndex::main_posting_count() const {
  size_t count = 0;
  for (const auto& [term, list] : names_) count += list.size();
  for (const auto& [term, list] : words_) count += list.size();
  return count;
}

size_t TemporalFullTextIndex::posting_count() const {
  return main_posting_count() + diff_.posting_count();
}

size_t TemporalFullTextIndex::PostingCountFor(TermKind kind,
                                              std::string_view term) const {
  const std::string lowered = ToLower(term);
  size_t count = 0;
  const PostingMap& main = MapFor(kind);
  if (auto it = main.find(lowered); it != main.end()) {
    count += it->second.size();
  }
  if (const std::vector<Posting>* adds = diff_.Find(kind, lowered)) {
    count += adds->size();
  }
  return count;
}

size_t TemporalFullTextIndex::EncodedSizeBytes() const {
  std::string scratch;
  EncodeTo(&scratch);
  return scratch.size();
}

}  // namespace txml
