#include "src/index/fti.h"

#include <utility>

#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace txml {
namespace {

/// Stable string key identifying one occurrence: kind, term, element and
/// path. A moved element's occurrence changes key (its path changed), so a
/// move closes the old posting and opens a fresh one — paths stored in
/// postings stay immutable.
std::string OccurrenceKey(TermKind kind, std::string_view term, Xid element,
                          const std::vector<Xid>& path) {
  std::string key;
  key.reserve(term.size() + 2 + 5 * (path.size() + 1));
  key.push_back(static_cast<char>(kind));
  key.append(term);
  key.push_back('\0');
  PutVarint32(&key, element);
  for (Xid xid : path) PutVarint32(&key, xid);
  return key;
}

}  // namespace

void TemporalFullTextIndex::OnVersionStored(DocId doc_id, VersionNum version,
                                            Timestamp /*ts*/,
                                            const XmlNode& current,
                                            const EditScript* /*delta*/) {
  std::vector<Occurrence> occurrences = ExtractOccurrences(current);
  auto& open = open_[doc_id];

  std::unordered_set<std::string> present;
  present.reserve(occurrences.size());
  for (Occurrence& occ : occurrences) {
    std::string key = OccurrenceKey(occ.kind, occ.term, occ.element, occ.path);
    present.insert(key);
    if (open.contains(key)) continue;  // occurrence survives, posting stays
    std::vector<Posting>& list = MapFor(occ.kind)[occ.term];
    list.push_back(Posting{doc_id, occ.element, std::move(occ.path), version,
                           kOpenVersion});
    open.emplace(std::move(key),
                 OpenRef{occ.kind, std::move(occ.term), list.size() - 1});
  }

  // Close postings for occurrences that vanished in this version.
  for (auto it = open.begin(); it != open.end();) {
    if (present.contains(it->first)) {
      ++it;
      continue;
    }
    const OpenRef& ref = it->second;
    MapFor(ref.kind).at(ref.term)[ref.index].end = version;
    it = open.erase(it);
  }
}

void TemporalFullTextIndex::OnDocumentDeleted(DocId doc_id, VersionNum last,
                                              Timestamp /*ts*/) {
  auto it = open_.find(doc_id);
  if (it == open_.end()) return;
  // The last version remains valid up to the delete time; postings close
  // just after it so ValidAt(last) still holds while LookupCurrent (which
  // wants open-ended postings only) no longer sees the document.
  for (auto& [key, ref] : it->second) {
    MapFor(ref.kind).at(ref.term)[ref.index].end = last + 1;
  }
  open_.erase(it);
}

void TemporalFullTextIndex::OnHistoryVacuumed(const VersionedDocument& doc) {
  const DocId doc_id = doc.doc_id();
  bool erased_any = false;
  for (PostingMap* map : {&names_, &words_}) {
    for (auto it = map->begin(); it != map->end();) {
      std::vector<Posting>& list = it->second;
      const size_t before = list.size();
      std::erase_if(list, [&](Posting& posting) {
        if (posting.doc_id != doc_id) return false;
        VersionNum end = posting.end == kOpenVersion
                             ? doc.version_count() + 1
                             : posting.end;
        if (!doc.AnyRetainedIn(posting.start, end)) return true;
        // Coarse-zone starts keep their original version number (their
        // timestamps survive coarsening), but nothing below
        // first_retained() has a timestamp anymore.
        if (posting.start < doc.first_retained()) {
          posting.start = doc.first_retained();
        }
        return false;
      });
      erased_any |= list.size() != before;
      it = list.empty() ? map->erase(it) : std::next(it);
    }
  }
  // Erasing list entries shifts posting indices, and term vectors are
  // shared across documents — every OpenRef is suspect.
  if (erased_any) RebuildOpenRefs();
}

void TemporalFullTextIndex::RebuildOpenRefs() {
  open_.clear();
  for (PostingMap* map : {&names_, &words_}) {
    TermKind kind =
        map == &names_ ? TermKind::kElementName : TermKind::kWord;
    for (auto& [term, list] : *map) {
      for (size_t p = 0; p < list.size(); ++p) {
        if (!list[p].OpenEnded()) continue;
        open_[list[p].doc_id].emplace(
            OccurrenceKey(kind, term, list[p].element, list[p].path),
            OpenRef{kind, term, p});
      }
    }
  }
}

std::vector<const Posting*> TemporalFullTextIndex::LookupCurrent(
    TermKind kind, std::string_view term) const {
  std::vector<const Posting*> result;
  auto it = MapFor(kind).find(ToLower(term));
  if (it == MapFor(kind).end()) return result;
  for (const Posting& posting : it->second) {
    if (posting.OpenEnded()) result.push_back(&posting);
  }
  return result;
}

std::vector<const Posting*> TemporalFullTextIndex::LookupT(
    TermKind kind, std::string_view term, Timestamp t) const {
  std::vector<const Posting*> result;
  auto it = MapFor(kind).find(ToLower(term));
  if (it == MapFor(kind).end()) return result;
  // Resolve time -> version once per document touched by this list.
  std::unordered_map<DocId, VersionNum> resolved;
  for (const Posting& posting : it->second) {
    auto cached = resolved.find(posting.doc_id);
    if (cached == resolved.end()) {
      VersionNum v = 0;  // 0 = document absent at t
      const VersionedDocument* doc = store_->FindById(posting.doc_id);
      if (doc != nullptr && doc->ExistsAt(t)) {
        auto version = doc->delta_index().VersionAt(t);
        // The snapshot presented for t is the nearest *retained* version
        // (identity below a coarsened horizon).
        if (version.has_value()) v = doc->SnapToRetained(*version);
      }
      cached = resolved.emplace(posting.doc_id, v).first;
    }
    if (cached->second != 0 && posting.ValidAt(cached->second)) {
      result.push_back(&posting);
    }
  }
  return result;
}

std::vector<const Posting*> TemporalFullTextIndex::LookupH(
    TermKind kind, std::string_view term) const {
  std::vector<const Posting*> result;
  auto it = MapFor(kind).find(ToLower(term));
  if (it == MapFor(kind).end()) return result;
  result.reserve(it->second.size());
  for (const Posting& posting : it->second) result.push_back(&posting);
  return result;
}

std::unique_ptr<TemporalFullTextIndex> TemporalFullTextIndex::Rebuild(
    const VersionedDocumentStore& store) {
  auto index = std::make_unique<TemporalFullTextIndex>(&store);
  for (const VersionedDocument* doc : store.AllDocuments()) {
    // Walk the retained chain only — vacuumed-away versions have no
    // timestamps and no reconstructible content.
    for (VersionNum v = doc->first_retained();
         v != 0 && v <= doc->version_count(); v = doc->NextRetained(v)) {
      auto tree = doc->ReconstructVersion(v);
      TXML_CHECK(tree.ok());
      index->OnVersionStored(doc->doc_id(), v,
                             doc->delta_index().TimestampOf(v), **tree,
                             nullptr);
    }
    if (doc->deleted()) {
      index->OnDocumentDeleted(doc->doc_id(), doc->version_count(),
                               doc->delete_time());
    }
  }
  return index;
}

namespace {

void EncodePostingList(const std::string& term,
                       const std::vector<Posting>& list, std::string* dst) {
  PutLengthPrefixed(dst, term);
  PutVarint64(dst, list.size());
  for (const Posting& posting : list) {
    PutVarint32(dst, posting.doc_id);
    PutVarint32(dst, posting.element);
    PutVarint64(dst, posting.path.size());
    Xid prev = 0;
    for (Xid xid : posting.path) {
      PutVarintSigned64(dst,
                        static_cast<int64_t>(xid) - static_cast<int64_t>(prev));
      prev = xid;
    }
    PutVarint32(dst, posting.start);
    // 0 = open-ended, otherwise run length (always >= 1).
    PutVarint32(dst, posting.end == kOpenVersion ? 0
                                                 : posting.end - posting.start);
  }
}

StatusOr<std::pair<std::string, std::vector<Posting>>> DecodePostingList(
    Decoder* decoder) {
  auto term = decoder->ReadLengthPrefixed();
  if (!term.ok()) return term.status();
  auto count = decoder->ReadVarint64();
  if (!count.ok()) return count.status();
  std::vector<Posting> list;
  if (*count > decoder->remaining()) {
    return Status::Corruption("implausible posting count");
  }
  list.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    Posting posting;
    auto doc = decoder->ReadVarint32();
    if (!doc.ok()) return doc.status();
    posting.doc_id = *doc;
    auto element = decoder->ReadVarint32();
    if (!element.ok()) return element.status();
    posting.element = *element;
    auto path_len = decoder->ReadVarint64();
    if (!path_len.ok()) return path_len.status();
    if (*path_len > decoder->remaining()) {
      return Status::Corruption("implausible path length");
    }
    int64_t prev = 0;
    for (uint64_t p = 0; p < *path_len; ++p) {
      auto gap = decoder->ReadVarintSigned64();
      if (!gap.ok()) return gap.status();
      prev += *gap;
      posting.path.push_back(static_cast<Xid>(prev));
    }
    auto start = decoder->ReadVarint32();
    if (!start.ok()) return start.status();
    posting.start = *start;
    auto run = decoder->ReadVarint32();
    if (!run.ok()) return run.status();
    posting.end = *run == 0 ? kOpenVersion : posting.start + *run;
    list.push_back(std::move(posting));
  }
  return std::make_pair(std::string(*term), std::move(list));
}

}  // namespace

void TemporalFullTextIndex::EncodeTo(std::string* dst) const {
  for (const PostingMap* map : {&names_, &words_}) {
    PutVarint64(dst, map->size());
    for (const auto& [term, list] : *map) {
      EncodePostingList(term, list, dst);
    }
  }
}

StatusOr<std::unique_ptr<TemporalFullTextIndex>> TemporalFullTextIndex::Decode(
    std::string_view data, const VersionedDocumentStore* store) {
  auto index = std::make_unique<TemporalFullTextIndex>(store);
  Decoder decoder(data);
  for (PostingMap* map : {&index->names_, &index->words_}) {
    TermKind kind = map == &index->names_ ? TermKind::kElementName
                                          : TermKind::kWord;
    auto term_count = decoder.ReadVarint64();
    if (!term_count.ok()) return term_count.status();
    for (uint64_t i = 0; i < *term_count; ++i) {
      auto list = DecodePostingList(&decoder);
      if (!list.ok()) return list.status();
      // Rebuild the open-occurrence map from open-ended postings so
      // incremental maintenance continues seamlessly.
      std::vector<Posting>& stored =
          (*map)[list->first] = std::move(list->second);
      for (size_t p = 0; p < stored.size(); ++p) {
        if (!stored[p].OpenEnded()) continue;
        std::string key = OccurrenceKey(kind, list->first,
                                        stored[p].element, stored[p].path);
        index->open_[stored[p].doc_id].emplace(
            std::move(key), OpenRef{kind, list->first, p});
      }
    }
  }
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after FTI");
  }
  return index;
}

size_t TemporalFullTextIndex::term_count() const {
  return names_.size() + words_.size();
}

size_t TemporalFullTextIndex::posting_count() const {
  size_t count = 0;
  for (const auto& [term, list] : names_) count += list.size();
  for (const auto& [term, list] : words_) count += list.size();
  return count;
}

size_t TemporalFullTextIndex::EncodedSizeBytes() const {
  std::string scratch;
  EncodeTo(&scratch);
  return scratch.size();
}

}  // namespace txml
