#ifndef TXML_SRC_INDEX_LIFETIME_INDEX_H_
#define TXML_SRC_INDEX_LIFETIME_INDEX_H_

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "src/storage/store.h"
#include "src/util/timestamp.h"
#include "src/xml/ids.h"

namespace txml {

/// The auxiliary EID -> (create time, delete time) index of Section 7.3.6 —
/// the alternative to traversing delta chains for CreTime/DelTime. As the
/// paper notes, inserts are mostly append-only (elements enter when their
/// document version commits), so maintenance is cheap; the benefit is O(1)
/// lookups where traversal costs O(versions).
class LifetimeIndex : public StoreObserver {
 public:
  // StoreObserver:
  void OnVersionStored(DocId doc_id, VersionNum version, Timestamp ts,
                       const XmlNode& current,
                       const EditScript* delta) override;
  void OnDocumentDeleted(DocId doc_id, VersionNum last,
                         Timestamp ts) override;
  /// Prunes entries for elements that vanished before the document's drop
  /// horizon — no retained version contains them, so no scan can produce
  /// their EIDs. Entries for elements still reachable keep their exact
  /// create times even when those precede the horizon.
  void OnHistoryVacuumed(const VersionedDocument& doc) override;

  /// Create time of the element (commit time of the version that
  /// introduced it); nullopt for unknown EIDs.
  std::optional<Timestamp> CreTime(const Eid& eid) const;

  /// Delete time: commit time of the version in which the element vanished
  /// (or the document delete time). nullopt if unknown or still alive.
  std::optional<Timestamp> DelTime(const Eid& eid) const;

  bool IsAlive(const Eid& eid) const;

  size_t entry_count() const { return lifetimes_.size(); }

  /// Persistence: entries plus the per-document alive sets (rebuilt from
  /// entries with an infinite delete time).
  void EncodeTo(std::string* dst) const;
  static StatusOr<std::unique_ptr<LifetimeIndex>> Decode(
      std::string_view data);

 private:
  struct Lifetime {
    Timestamp create;
    Timestamp del = Timestamp::Infinity();
  };

  std::unordered_map<Eid, Lifetime, EidHash> lifetimes_;
  /// XIDs alive in the current version of each document.
  std::unordered_map<DocId, std::unordered_set<Xid>> alive_;
};

}  // namespace txml

#endif  // TXML_SRC_INDEX_LIFETIME_INDEX_H_
