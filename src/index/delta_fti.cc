#include "src/index/delta_fti.h"

#include <map>
#include <utility>

#include "src/util/coding.h"
#include "src/util/strings.h"

namespace txml {
namespace {

std::string OccKeyOf(const Occurrence& occ) {
  std::string key;
  key.push_back(static_cast<char>(occ.kind));
  key.append(occ.term);
  key.push_back('\0');
  PutVarint32(&key, occ.element);
  for (Xid xid : occ.path) PutVarint32(&key, xid);
  return key;
}

}  // namespace

void DeltaContentIndex::OnVersionStored(DocId doc_id, VersionNum version,
                                        Timestamp /*ts*/,
                                        const XmlNode& current,
                                        const EditScript* /*delta*/) {
  std::vector<Occurrence> occurrences = ExtractOccurrences(current);
  auto& previous = previous_[doc_id];

  std::unordered_map<std::string, Occurrence> now;
  now.reserve(occurrences.size());
  for (Occurrence& occ : occurrences) {
    now.emplace(OccKeyOf(occ), std::move(occ));
  }

  for (const auto& [key, occ] : now) {
    if (previous.contains(key)) continue;
    MapFor(occ.kind)[occ.term].push_back(EventPosting{
        doc_id, occ.element, occ.path, version, Event::kAdded});
  }
  for (const auto& [key, occ] : previous) {
    if (now.contains(key)) continue;
    MapFor(occ.kind)[occ.term].push_back(EventPosting{
        doc_id, occ.element, occ.path, version, Event::kRemoved});
  }
  previous = std::move(now);
}

void DeltaContentIndex::OnDocumentDeleted(DocId doc_id, VersionNum last,
                                          Timestamp /*ts*/) {
  auto it = previous_.find(doc_id);
  if (it == previous_.end()) return;
  for (const auto& [key, occ] : it->second) {
    MapFor(occ.kind)[occ.term].push_back(EventPosting{
        doc_id, occ.element, occ.path, last + 1, Event::kRemoved});
  }
  previous_.erase(it);
}

void DeltaContentIndex::OnHistoryVacuumed(const VersionedDocument& doc) {
  const DocId doc_id = doc.doc_id();
  const VersionNum horizon = doc.first_retained();
  if (horizon <= 1) return;
  for (EventMap* map : {&names_, &words_}) {
    for (auto it = map->begin(); it != map->end();) {
      std::vector<EventPosting>& list = it->second;
      // Per occurrence (element, path) run: position of the last "removed"
      // event at or below the horizon. Everything up to it — the adds it
      // cancels included — is invisible from every retained version.
      std::map<std::pair<Xid, std::vector<Xid>>, size_t> cutoff;
      for (size_t i = 0; i < list.size(); ++i) {
        const EventPosting& event = list[i];
        if (event.doc_id == doc_id && event.event == Event::kRemoved &&
            event.version <= horizon) {
          cutoff[{event.element, event.path}] = i;
        }
      }
      if (!cutoff.empty()) {
        std::vector<EventPosting> keep;
        keep.reserve(list.size());
        for (size_t i = 0; i < list.size(); ++i) {
          if (list[i].doc_id == doc_id) {
            auto c = cutoff.find({list[i].element, list[i].path});
            if (c != cutoff.end() && i <= c->second) continue;
          }
          keep.push_back(std::move(list[i]));
        }
        list = std::move(keep);
      }
      it = list.empty() ? map->erase(it) : std::next(it);
    }
  }
}

std::vector<const DeltaContentIndex::EventPosting*>
DeltaContentIndex::LookupEvents(TermKind kind, std::string_view term) const {
  std::vector<const EventPosting*> result;
  auto it = MapFor(kind).find(ToLower(term));
  if (it == MapFor(kind).end()) return result;
  result.reserve(it->second.size());
  for (const EventPosting& event : it->second) result.push_back(&event);
  return result;
}

std::vector<DeltaContentIndex::EventPosting>
DeltaContentIndex::LookupSnapshot(
    TermKind kind, std::string_view term,
    const std::unordered_map<DocId, VersionNum>& version_of) const {
  std::vector<EventPosting> result;
  auto it = MapFor(kind).find(ToLower(term));
  if (it == MapFor(kind).end()) return result;
  // Fold: an occurrence is valid at v if its latest event with
  // version <= v is an add. Events per (doc, element, path) are naturally
  // in version order (appended as versions commit).
  std::unordered_map<std::string, const EventPosting*> latest;
  for (const EventPosting& event : it->second) {
    auto doc_version = version_of.find(event.doc_id);
    if (doc_version == version_of.end() || doc_version->second == 0 ||
        event.version > doc_version->second) {
      continue;
    }
    std::string key;
    PutVarint32(&key, event.doc_id);
    PutVarint32(&key, event.element);
    for (Xid xid : event.path) PutVarint32(&key, xid);
    latest[key] = &event;
  }
  for (const auto& [key, event] : latest) {
    if (event->event == Event::kAdded) result.push_back(*event);
  }
  return result;
}

size_t DeltaContentIndex::posting_count() const {
  size_t count = 0;
  for (const auto& [term, list] : names_) count += list.size();
  for (const auto& [term, list] : words_) count += list.size();
  return count;
}

size_t DeltaContentIndex::EncodedSizeBytes() const {
  std::string scratch;
  size_t total = 0;
  for (const EventMap* map : {&names_, &words_}) {
    for (const auto& [term, list] : *map) {
      scratch.clear();
      PutLengthPrefixed(&scratch, term);
      PutVarint64(&scratch, list.size());
      for (const EventPosting& event : list) {
        PutVarint32(&scratch, event.doc_id);
        PutVarint32(&scratch, event.element);
        PutVarint64(&scratch, event.path.size());
        Xid prev = 0;
        for (Xid xid : event.path) {
          PutVarintSigned64(&scratch, static_cast<int64_t>(xid) -
                                          static_cast<int64_t>(prev));
          prev = xid;
        }
        PutVarint32(&scratch, event.version);
        scratch.push_back(static_cast<char>(event.event));
      }
      total += scratch.size();
    }
  }
  return total;
}

}  // namespace txml
