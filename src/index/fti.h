#ifndef TXML_SRC_INDEX_FTI_H_
#define TXML_SRC_INDEX_FTI_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/index/differential_fti.h"
#include "src/index/posting.h"
#include "src/storage/store.h"
#include "src/util/statusor.h"

namespace txml {

/// The temporal full-text index of Section 7.2, built with the paper's
/// chosen alternative: *index the contents of the versions*. Postings carry
/// version-number validity ranges; occurrences surviving from one version
/// to the next keep their posting (one entry covers the whole run), so
/// index growth is proportional to change volume, not to version count.
///
/// Maintained incrementally as a StoreObserver: on each stored version the
/// occurrence set of the new tree is diffed against the open occurrences —
/// vanished ones are closed at the new version, new ones opened.
///
/// Storage is split RDF-3X-style (DESIGN.md §13) into a compacted **main**
/// index and a small **differential** index. Commits only *append* to the
/// differential — the main posting lists never grow or move between
/// compactions, so the per-commit index work is proportional to the change
/// volume regardless of index size. (Closing a run that *started* in the
/// main index is an in-place write to that posting's `end` field; postings
/// never move, so lookups' returned pointers are what the usual
/// writer/reader exclusion already covers.) Lookups walk main then
/// differential; CompactDifferential folds the adds onto the main tails,
/// which preserves that merged order — query results are identical before
/// and after a compaction.
///
/// The three access functions of Section 7.2:
///  * LookupCurrent  — FTI_lookup(word): occurrences in currently-valid
///    (last, undeleted) versions;
///  * LookupT        — FTI_lookup_T(word, t): occurrences in the snapshot
///    at time t (version resolution through the delta indexes);
///  * LookupH        — FTI_lookup_H(word): all occurrences over all time.
///
/// Returned pointers are invalidated by the next write to the index.
class TemporalFullTextIndex : public StoreObserver {
 public:
  /// `store` is consulted for version-number <-> timestamp resolution; not
  /// owned, must outlive the index.
  explicit TemporalFullTextIndex(const VersionedDocumentStore* store)
      : store_(store) {}

  // StoreObserver:
  void OnVersionStored(DocId doc_id, VersionNum version, Timestamp ts,
                       const XmlNode& current,
                       const EditScript* delta) override;
  void OnDocumentDeleted(DocId doc_id, VersionNum last,
                         Timestamp ts) override;
  /// Compacts the document's posting lists to its retained history:
  /// postings whose validity range holds no retained version are dropped,
  /// and surviving ranges are re-anchored at first_retained() (stamps
  /// below it are gone from the delta index).
  void OnHistoryVacuumed(const VersionedDocument& doc) override;

  /// FTI_lookup: postings valid in the current version of live documents.
  std::vector<const Posting*> LookupCurrent(TermKind kind,
                                            std::string_view term) const;

  /// FTI_lookup_T: postings valid in the snapshot at time t.
  std::vector<const Posting*> LookupT(TermKind kind, std::string_view term,
                                      Timestamp t) const;

  /// FTI_lookup_H: every posting for the term, all versions.
  std::vector<const Posting*> LookupH(TermKind kind,
                                      std::string_view term) const;

  /// Rebuilds an index from scratch by replaying a store's history (used
  /// after loading a persisted store).
  static std::unique_ptr<TemporalFullTextIndex> Rebuild(
      const VersionedDocumentStore& store);

  /// Compact persistence: posting lists with delta/varint encoding. The
  /// incremental-maintenance state (open-occurrence map) is rebuilt from
  /// the open-ended postings on decode, so a loaded index keeps accepting
  /// writes.
  void EncodeTo(std::string* dst) const;
  static StatusOr<std::unique_ptr<TemporalFullTextIndex>> Decode(
      std::string_view data, const VersionedDocumentStore* store);

  /// Folds the differential postings onto the tails of the main posting
  /// lists and clears the differential. Requires the same exclusion as a
  /// write (no concurrent lookups). Idempotent when the differential is
  /// empty.
  void CompactDifferential();

  /// Statistics for the E3 index-size experiment.
  size_t term_count() const;
  size_t posting_count() const;
  /// Size of the compressed (varint/delta) encoding of all posting lists.
  size_t EncodedSizeBytes() const;

  /// Gauges of the main/differential split (service stats + compaction
  /// scheduling + planner).
  size_t main_posting_count() const;
  size_t differential_posting_count() const { return diff_.posting_count(); }
  uint64_t compaction_count() const { return compactions_; }

  /// Total postings (main + differential) for one term — the planner's
  /// index-arm cost unit. `term` is lower-cased internally.
  size_t PostingCountFor(TermKind kind, std::string_view term) const;

 private:
  using PostingMap = DifferentialFti::PostingMap;

  struct OpenRef {
    TermKind kind;
    std::string term;
    size_t index;          // into the term's posting vector
    bool in_diff = false;  // which half of the split `index` points into
  };

  /// Rebuilds open_ from the open-ended postings (posting indices shift
  /// when a vacuum erases list entries).
  void RebuildOpenRefs();

  PostingMap& MapFor(TermKind kind) {
    return kind == TermKind::kElementName ? names_ : words_;
  }
  const PostingMap& MapFor(TermKind kind) const {
    return kind == TermKind::kElementName ? names_ : words_;
  }

  /// The open posting an OpenRef points at (main or differential half).
  Posting* PostingOf(const OpenRef& ref);

  /// Visits the term's postings, main list first then differential — the
  /// merged view every lookup uses. `lowered` must already be lower-cased.
  template <typename Fn>
  void ForEachPosting(TermKind kind, const std::string& lowered,
                      Fn&& fn) const;

  const VersionedDocumentStore* store_;
  /// Main (compacted) halves: append-free between compactions.
  PostingMap names_;
  PostingMap words_;
  /// Differential half: all appends land here until the next compaction.
  DifferentialFti diff_;
  uint64_t compactions_ = 0;
  /// Per document: occurrence key -> open posting, for incremental
  /// maintenance.
  std::unordered_map<DocId, std::unordered_map<std::string, OpenRef>> open_;
};

}  // namespace txml

#endif  // TXML_SRC_INDEX_FTI_H_
