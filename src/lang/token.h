#ifndef TXML_SRC_LANG_TOKEN_H_
#define TXML_SRC_LANG_TOKEN_H_

#include <string>

#include "src/util/timestamp.h"

namespace txml {

/// Token kinds of the temporal query dialect (Section 5 of the paper: a mix
/// of Lorel, the Xyleme query language and elements of XPath/XQuery).
enum class TokenKind {
  kEnd,
  kIdent,    // element names, variables — case preserved
  kKeyword,  // SELECT, FROM, ... — matched case-insensitively, text upper
  kString,   // "..."
  kNumber,   // 123 or 12.5
  kDate,     // dd/mm/yyyy or dd/mm/yyyy hh:mm:ss
  kComma,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kSlash,        // '/'
  kSlashSlash,   // '//'
  kAt,           // '@'
  kStar,         // '*'
  kPlus,
  kMinus,
  kEq,           // '='
  kNe,           // '!='
  kLt,
  kLe,
  kGt,
  kGe,
  kIdEq,         // '==' (node identity, Section 7.4)
  kSim,          // '~'  (similarity)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier text (original case) or upper-cased keyword.
  std::string text;
  double number = 0;
  Timestamp date;
  /// 1-based position in the query string, for error messages.
  size_t offset = 0;
};

}  // namespace txml

#endif  // TXML_SRC_LANG_TOKEN_H_
