#ifndef TXML_SRC_LANG_AST_H_
#define TXML_SRC_LANG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/timestamp.h"
#include "src/xml/path.h"

namespace txml {

/// Expression node of the query dialect. One tagged struct rather than a
/// class hierarchy: the language is small and the executor switches on
/// kind anyway.
struct Expr {
  enum class Kind {
    kString,      // "Napoli"
    kNumber,      // 10, 12.5
    kDate,        // 26/01/2001
    kNow,         // NOW
    kVar,         // R
    kPath,        // R/price, R/name/@lang
    kTimeOf,      // TIME(R)
    kCreateTime,  // CREATE TIME(R)
    kDeleteTime,  // DELETE TIME(R)
    kNav,         // CURRENT(R)[/path], PREVIOUS(R)[/path], NEXT(R)[/path]
    kDiff,        // DIFF(a, b)
    kAggregate,   // SUM/COUNT/MIN/MAX/AVG(expr)
    kBinary,      // comparisons, AND, OR
    kNot,         // NOT cond
    kContains,    // CONTAINS(R/path, "words") — word containment, the
                  // FTI's native predicate (Section 6.1)
    kTimeArith,   // <time expr> ± n DAYS/WEEKS/...
  };

  enum class Nav { kCurrent, kPrevious, kNext };
  enum class Agg { kSum, kCount, kMin, kMax, kAvg };

  /// Comparison/logic operators. kEq is value equality ('='), kIdEq is
  /// node identity ('==', compares EIDs), kSim is the similarity operator
  /// ('~') — the three flavours discussed in Section 7.4.
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIdEq, kSim, kAnd, kOr };

  Kind kind;

  // kString / kNumber / kDate
  std::string str;
  double number = 0;
  Timestamp date;

  // kVar / kPath / kNav: the variable and (for kPath/kNav) optional path.
  std::string var;
  std::optional<PathExpr> path;
  Nav nav = Nav::kCurrent;

  // kAggregate
  Agg agg = Agg::kCount;

  // kBinary / kTimeArith / kDiff / kAggregate operands.
  Op op = Op::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kTimeArith: lhs ± duration.
  int64_t duration_micros = 0;

  /// Debug rendering.
  std::string ToString() const;
};

/// One FROM-clause binding: doc("url")[timespec]/path Var, or the
/// warehouse form collection("prefix*")[timespec]/path Var which binds
/// across every document whose URL matches (the Xyleme-style collection
/// scan — pattern operators take "a forest of trees" as input, Section 6).
struct FromItem {
  enum class Mode {
    kCurrent,   // no timestamp: the current snapshot
    kSnapshot,  // [26/01/2001], [NOW - 14 DAYS], ...
    kEvery,     // [EVERY] — all versions (Section 5)
  };

  /// Exact URL for doc(); for collection() a literal prefix optionally
  /// followed by '*'.
  std::string url;
  bool is_collection = false;
  Mode mode = Mode::kCurrent;
  /// Constant time expression for kSnapshot (evaluated at plan time).
  std::unique_ptr<Expr> snapshot_time;
  /// The location path binding the variable, e.g. /guide/restaurant.
  PathExpr path;
  std::string var;
};

/// A parsed query.
struct Query {
  bool distinct = false;
  std::vector<std::unique_ptr<Expr>> select;
  std::vector<FromItem> from;
  std::unique_ptr<Expr> where;  // null if absent

  std::string ToString() const;
};

}  // namespace txml

#endif  // TXML_SRC_LANG_AST_H_
