#ifndef TXML_SRC_LANG_LEXER_H_
#define TXML_SRC_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/util/statusor.h"

namespace txml {

/// Hard cap on query text accepted by Tokenize. Queries arrive from
/// untrusted network peers (via the wire envelope); an attacker-sized
/// input must fail with a typed ParseError, not balloon the token vector.
/// Generous: the longest legitimate query in the test corpus is < 1 KiB.
inline constexpr size_t kMaxQueryBytes = 1u << 20;  // 1 MiB

/// Tokenizes a query string. Keywords are recognised case-insensitively
/// (SQL style); identifiers keep their case (XML names are case-
/// sensitive). Date literals `dd/mm/yyyy` are disambiguated from paths by
/// their all-digit shape. Inputs over kMaxQueryBytes are rejected.
StatusOr<std::vector<Token>> Tokenize(std::string_view query);

/// True if `text` (upper-cased) is one of the dialect's keywords.
bool IsKeyword(std::string_view upper);

}  // namespace txml

#endif  // TXML_SRC_LANG_LEXER_H_
