#ifndef TXML_SRC_LANG_LEXER_H_
#define TXML_SRC_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/util/statusor.h"

namespace txml {

/// Tokenizes a query string. Keywords are recognised case-insensitively
/// (SQL style); identifiers keep their case (XML names are case-
/// sensitive). Date literals `dd/mm/yyyy` are disambiguated from paths by
/// their all-digit shape.
StatusOr<std::vector<Token>> Tokenize(std::string_view query);

/// True if `text` (upper-cased) is one of the dialect's keywords.
bool IsKeyword(std::string_view upper);

}  // namespace txml

#endif  // TXML_SRC_LANG_LEXER_H_
