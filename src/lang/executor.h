#ifndef TXML_SRC_LANG_EXECUTOR_H_
#define TXML_SRC_LANG_EXECUTOR_H_

#include <string_view>

#include "src/lang/ast.h"
#include "src/query/context.h"
#include "src/query/planner.h"
#include "src/query/time_ops.h"
#include "src/util/statusor.h"
#include "src/util/timestamp.h"
#include "src/xml/node.h"

namespace txml {

/// Execution knobs.
struct ExecOptions {
  /// The value of NOW in queries; the database façade passes its commit
  /// clock's latest time.
  Timestamp now;
  /// Strategy for CREATE TIME / DELETE TIME (Section 7.3.6). kAuto lets
  /// the planner resolve per query (index when one is attached, else
  /// traversal); a pinned kIndex without an attached index degrades to
  /// traversal instead of failing.
  LifetimeStrategy lifetime_strategy = LifetimeStrategy::kAuto;
  /// Strategy for the pattern-scan operators: kAuto compares posting-list
  /// sizes against history-weighted tree sizes per FROM item
  /// (src/query/planner.h); kIndex / kTraversal pin one arm (benchmarks,
  /// oracle tests).
  ScanStrategy scan_strategy = ScanStrategy::kAuto;
  /// When false, disables the Q2-style optimization that skips document
  /// reconstruction for queries that never look at element content — used
  /// by the E10 benchmark to quantify that optimization.
  bool skip_unneeded_reconstruction = true;
};

/// Counters exposed for the benchmarks.
struct ExecStats {
  size_t snapshot_reconstructions = 0;
  /// Snapshots served by the shared cache (QueryContext::snapshot_cache)
  /// instead of delta-chain reconstruction.
  size_t snapshot_cache_hits = 0;
  size_t rows_considered = 0;
  size_t rows_emitted = 0;
  /// Planner decisions (src/query/planner.h): FROM-item scans dispatched
  /// to the FTI join vs. tree traversal, CREATE/DELETE TIME evaluations by
  /// strategy, and explicitly requested strategies that were unavailable
  /// and degraded gracefully instead of aborting.
  size_t scans_index = 0;
  size_t scans_traversal = 0;
  size_t lifetime_index_lookups = 0;
  size_t lifetime_traversals = 0;
  size_t strategy_fallbacks = 0;
};

/// Plans and executes one query against a QueryContext:
///
///  * each FROM item becomes a pattern scan — PatternScan on the current
///    snapshot, TPatternScan at an explicit timestamp, TPatternScanAll for
///    [EVERY] (Sections 6-7);
///  * WHERE equality constants on paths below the binding variable are
///    pushed into the pattern as word tests (the FTI-containment-then-
///    equality strategy of Section 6.1), and re-verified after the scan;
///  * bindings materialize element versions via Reconstruct only when the
///    query actually reads content;
///  * results are delivered as <results><result>…</result></results>
///    (Section 5's convention).
class QueryExecutor {
 public:
  QueryExecutor(const QueryContext& ctx, ExecOptions options)
      : ctx_(ctx), options_(options) {}

  /// Parses and executes.
  StatusOr<XmlDocument> Execute(std::string_view query_text);

  /// Executes a parsed query.
  StatusOr<XmlDocument> Execute(const Query& query);

  /// Const read path: counters accumulate into caller-owned `stats`
  /// (never null). Many threads may execute concurrently through one
  /// executor — or per-thread copies — as long as nothing mutates the
  /// stores/indexes behind ctx meanwhile; the service layer guarantees
  /// that with its commit lock.
  StatusOr<XmlDocument> Execute(std::string_view query_text,
                                ExecStats* stats) const;
  StatusOr<XmlDocument> Execute(const Query& query, ExecStats* stats) const;

  /// Renders the execution plan without running it: one line per FROM
  /// item (scan operator, resolved snapshot time, pattern with pushed-down
  /// word tests, whether content is materialized) plus the post-scan
  /// predicate and output shape. For developers and tests.
  StatusOr<std::string> Explain(std::string_view query_text);
  StatusOr<std::string> Explain(const Query& query);

  const ExecStats& stats() const { return stats_; }

 private:
  QueryContext ctx_;
  ExecOptions options_;
  ExecStats stats_;
};

}  // namespace txml

#endif  // TXML_SRC_LANG_EXECUTOR_H_
