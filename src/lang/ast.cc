#include "src/lang/ast.h"

namespace txml {
namespace {

std::string OpText(Expr::Op op) {
  switch (op) {
    case Expr::Op::kEq: return "=";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
    case Expr::Op::kIdEq: return "==";
    case Expr::Op::kSim: return "~";
    case Expr::Op::kAnd: return "AND";
    case Expr::Op::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kString:
      return "\"" + str + "\"";
    case Kind::kNumber: {
      std::string text = std::to_string(number);
      // Trim trailing zeros for readability.
      while (!text.empty() && text.back() == '0') text.pop_back();
      if (!text.empty() && text.back() == '.') text.pop_back();
      return text;
    }
    case Kind::kDate:
      return date.ToString();
    case Kind::kNow:
      return "NOW";
    case Kind::kVar:
      return var;
    case Kind::kPath:
      // Paths after a variable are parsed as absolute, so ToString already
      // starts with '/'.
      return var + (path ? path->ToString() : "");
    case Kind::kTimeOf:
      return "TIME(" + var + ")";
    case Kind::kCreateTime:
      return "CREATE TIME(" + var + ")";
    case Kind::kDeleteTime:
      return "DELETE TIME(" + var + ")";
    case Kind::kNav: {
      std::string name = nav == Nav::kCurrent    ? "CURRENT"
                         : nav == Nav::kPrevious ? "PREVIOUS"
                                                 : "NEXT";
      std::string out = name + "(" + var + ")";
      if (path) out += path->ToString();
      return out;
    }
    case Kind::kDiff:
      return "DIFF(" + lhs->ToString() + ", " + rhs->ToString() + ")";
    case Kind::kAggregate: {
      std::string name = agg == Agg::kSum     ? "SUM"
                         : agg == Agg::kCount ? "COUNT"
                         : agg == Agg::kMin   ? "MIN"
                         : agg == Agg::kMax   ? "MAX"
                                              : "AVG";
      return name + "(" + lhs->ToString() + ")";
    }
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + OpText(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNot:
      return "NOT " + lhs->ToString();
    case Kind::kContains:
      return "CONTAINS(" + lhs->ToString() + ", " + rhs->ToString() + ")";
    case Kind::kTimeArith: {
      int64_t days = duration_micros / kMicrosPerDay;
      return "(" + lhs->ToString() +
             (duration_micros >= 0 ? " + " : " - ") +
             std::to_string(days < 0 ? -days : days) + " DAYS)";
    }
  }
  return "?";
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i]->ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    const FromItem& item = from[i];
    out += (item.is_collection ? "collection(\"" : "doc(\"") + item.url +
           "\")";
    if (item.mode == FromItem::Mode::kEvery) {
      out += "[EVERY]";
    } else if (item.mode == FromItem::Mode::kSnapshot) {
      out += "[" + item.snapshot_time->ToString() + "]";
    }
    out += item.path.ToString() + " " + item.var;
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  return out;
}

}  // namespace txml
