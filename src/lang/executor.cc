#include "src/lang/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/diff/matcher.h"
#include "src/lang/parser.h"
#include "src/query/diff_op.h"
#include "src/query/history_ops.h"
#include "src/query/scan.h"
#include "src/util/logging.h"
#include "src/util/macros.h"
#include "src/util/strings.h"
#include "src/xml/pattern.h"
#include "src/xml/serializer.h"

namespace txml {
namespace {

/// One element-version binding of a FROM variable.
struct Binding {
  Teid teid;
  TimeInterval validity;
  /// Materialized element version; null when the plan proved the content
  /// is never read (the Q2 optimization).
  std::shared_ptr<const XmlNode> tree;
};

/// A row of the (conceptual) cross product: one binding per FROM item.
using Row = std::vector<const Binding*>;

/// Runtime value of an expression.
struct Value {
  enum class Kind { kNull, kString, kNumber, kTime, kNodes };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0;
  Timestamp time;
  /// Borrowed nodes (from binding trees or from `owned`).
  std::vector<const XmlNode*> nodes;
  /// Keeps alive trees materialized by CURRENT/PREVIOUS/NEXT/DIFF.
  std::vector<std::shared_ptr<const XmlNode>> owned;

  static Value Null() { return Value(); }
  static Value String(std::string s) {
    Value v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static Value Number(double n) {
    Value v;
    v.kind = Kind::kNumber;
    v.num = n;
    return v;
  }
  static Value Time(Timestamp t) {
    Value v;
    v.kind = Kind::kTime;
    v.time = t;
    return v;
  }
};

/// The scalar string of a node: text content for elements/text, value for
/// attributes.
std::string NodeString(const XmlNode& node) {
  if (node.is_attribute()) return node.value();
  return node.TextContent();
}

bool TryParseNumber(const std::string& text, double* out) {
  std::string trimmed(Trim(text));
  if (trimmed.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) return false;
  *out = value;
  return true;
}

/// Token-set similarity (the '~' operator, in the spirit of Theobald &
/// Weikum): Jaccard overlap of word sets >= 0.5.
bool Similar(const std::string& a, const std::string& b) {
  std::set<std::string> ta, tb;
  for (std::string& w : TokenizeWords(a)) ta.insert(std::move(w));
  for (std::string& w : TokenizeWords(b)) tb.insert(std::move(w));
  if (ta.empty() && tb.empty()) return true;
  size_t common = 0;
  for (const std::string& w : ta) {
    if (tb.contains(w)) ++common;
  }
  size_t unioned = ta.size() + tb.size() - common;
  return unioned > 0 && 2 * common >= unioned;
}

/// Scalar three-way comparison used by the ordering operators; returns
/// false via `ok` when incomparable.
bool CompareScalars(const std::string& a, const std::string& b,
                    Expr::Op op) {
  double na, nb;
  int cmp;
  if (TryParseNumber(a, &na) && TryParseNumber(b, &nb)) {
    cmp = na < nb ? -1 : (na > nb ? 1 : 0);
  } else {
    cmp = a.compare(b);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Expr::Op::kEq: return cmp == 0;
    case Expr::Op::kNe: return cmp != 0;
    case Expr::Op::kLt: return cmp < 0;
    case Expr::Op::kLe: return cmp <= 0;
    case Expr::Op::kGt: return cmp > 0;
    case Expr::Op::kGe: return cmp >= 0;
    case Expr::Op::kSim: return Similar(a, b);
    default: return false;
  }
}

/// All scalar strings of a value (node sets expand to one per node).
std::vector<std::string> ScalarsOf(const Value& value) {
  switch (value.kind) {
    case Value::Kind::kNull:
      return {};
    case Value::Kind::kString:
      return {value.str};
    case Value::Kind::kNumber: {
      // Render integral numbers without decimals.
      double n = value.num;
      if (n == static_cast<double>(static_cast<int64_t>(n))) {
        return {std::to_string(static_cast<int64_t>(n))};
      }
      return {std::to_string(n)};
    }
    case Value::Kind::kTime:
      return {value.time.ToString()};
    case Value::Kind::kNodes: {
      std::vector<std::string> out;
      out.reserve(value.nodes.size());
      for (const XmlNode* node : value.nodes) out.push_back(NodeString(*node));
      return out;
    }
  }
  return {};
}

/// Existential comparison: true if any scalar pair satisfies the operator.
/// Time values compare chronologically.
bool CompareValues(const Value& a, const Value& b, Expr::Op op) {
  if (a.kind == Value::Kind::kNull || b.kind == Value::Kind::kNull) {
    return false;
  }
  if (a.kind == Value::Kind::kTime && b.kind == Value::Kind::kTime) {
    switch (op) {
      case Expr::Op::kEq: return a.time == b.time;
      case Expr::Op::kNe: return a.time != b.time;
      case Expr::Op::kLt: return a.time < b.time;
      case Expr::Op::kLe: return a.time <= b.time;
      case Expr::Op::kGt: return a.time > b.time;
      case Expr::Op::kGe: return a.time >= b.time;
      default: return false;
    }
  }
  for (const std::string& sa : ScalarsOf(a)) {
    for (const std::string& sb : ScalarsOf(b)) {
      if (CompareScalars(sa, sb, op)) return true;
    }
  }
  return false;
}

/// Whether the plan must materialize element content for a variable. True
/// for path references, bare variable uses (serialization, value
/// comparisons) — but not for TIME/CREATE TIME/DELETE TIME, ==, DIFF,
/// CURRENT/PREVIOUS/NEXT (those reconstruct on their own), or bare
/// variables under COUNT/SUM (the Q2 optimization: counting needs no
/// reconstruction).
void CollectTreeNeeds(const Expr& expr, bool under_count,
                      std::set<std::string>* needs) {
  switch (expr.kind) {
    case Expr::Kind::kVar:
      if (!under_count) needs->insert(expr.var);
      break;
    case Expr::Kind::kPath:
      needs->insert(expr.var);
      break;
    case Expr::Kind::kContains:
      // Verification reads the addressed node's direct content.
      needs->insert(expr.lhs->var);
      break;
    case Expr::Kind::kAggregate: {
      bool counting = expr.agg == Expr::Agg::kCount ||
                      (expr.agg == Expr::Agg::kSum &&
                       expr.lhs->kind == Expr::Kind::kVar);
      CollectTreeNeeds(*expr.lhs, counting, needs);
      break;
    }
    case Expr::Kind::kBinary: {
      bool id_eq = expr.op == Expr::Op::kIdEq;
      CollectTreeNeeds(*expr.lhs, id_eq, needs);
      CollectTreeNeeds(*expr.rhs, id_eq, needs);
      break;
    }
    case Expr::Kind::kDiff:
      // DiffOp reconstructs its operands itself.
      break;
    case Expr::Kind::kTimeArith:
    case Expr::Kind::kNot:
      CollectTreeNeeds(*expr.lhs, under_count, needs);
      break;
    default:
      break;  // literals, TIME/CREATE/DELETE TIME, NAV: no content needed
  }
}

/// A WHERE conjunct of shape `Var/path = "word"` that can be pushed into
/// the variable's pattern as an FTI word test.
struct PushdownPredicate {
  const Expr* path_expr;
  std::string word;
};

void CollectPushdowns(
    const Expr* expr,
    std::unordered_map<std::string, std::vector<PushdownPredicate>>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary && expr->op == Expr::Op::kAnd) {
    CollectPushdowns(expr->lhs.get(), out);
    CollectPushdowns(expr->rhs.get(), out);
    return;
  }
  if (expr->kind == Expr::Kind::kContains) {
    // Containment is the FTI's native predicate: every word becomes an
    // index test (conjunctive — all must occur in the same element).
    const Expr* target = expr->lhs.get();
    if (target->path.has_value()) {
      for (const PathStep& step : target->path->steps()) {
        if (step.is_attribute || step.name == "*") return;
      }
    }
    for (const std::string& word : TokenizeWords(expr->rhs->str)) {
      (*out)[target->var].push_back(PushdownPredicate{target, word});
    }
    return;
  }
  if (expr->kind != Expr::Kind::kBinary || expr->op != Expr::Op::kEq) return;
  const Expr* path = nullptr;
  const Expr* literal = nullptr;
  for (const Expr* side : {expr->lhs.get(), expr->rhs.get()}) {
    if (side->kind == Expr::Kind::kPath) path = side;
    if (side->kind == Expr::Kind::kString ||
        side->kind == Expr::Kind::kNumber) {
      literal = side;
    }
  }
  if (path == nullptr || literal == nullptr) return;
  // Attribute steps and wildcards are not representable as FTI patterns.
  for (const PathStep& step : path->path->steps()) {
    if (step.is_attribute || step.name == "*") return;
  }
  std::string text = literal->kind == Expr::Kind::kString
                         ? literal->str
                         : ScalarsOf(Value::Number(literal->number))[0];
  std::vector<std::string> words = TokenizeWords(text);
  if (words.size() != 1) return;  // multi-word constants: filter post-scan
  (*out)[path->var].push_back(PushdownPredicate{path, words[0]});
}

}  // namespace

StatusOr<XmlDocument> QueryExecutor::Execute(std::string_view query_text) {
  TXML_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Execute(query);
}

namespace {

/// Per-execution state: binding lists, reconstruction cache, evaluation.
class Execution {
 public:
  Execution(const QueryContext& ctx, const ExecOptions& options,
            ExecStats* stats)
      : ctx_(ctx), options_(options), stats_(stats) {}

  StatusOr<XmlDocument> Run(const Query& query) {
    TXML_RETURN_IF_ERROR(Analyze(query));
    TXML_RETURN_IF_ERROR(BindAll(query));
    return Evaluate(query);
  }

  StatusOr<std::string> Explain(const Query& query) {
    TXML_RETURN_IF_ERROR(Analyze(query));
    std::string out;
    for (const FromItem& item : query.from) {
      TXML_ASSIGN_OR_RETURN(Pattern pattern, BuildPattern(item));
      out += item.var + ": ";
      switch (item.mode) {
        case FromItem::Mode::kCurrent:
          out += "PatternScan[current]";
          break;
        case FromItem::Mode::kSnapshot: {
          TXML_ASSIGN_OR_RETURN(Timestamp t, ConstTime(*item.snapshot_time));
          out += "TPatternScan[t=" + t.ToString() + "]";
          break;
        }
        case FromItem::Mode::kEvery:
          out += "TPatternScanAll";
          break;
      }
      out += " pattern=" + pattern.ToString();
      out += item.is_collection ? " collection=\"" : " doc=\"";
      out += item.url + "\"";
      out += needs_tree_.contains(item.var) ? " materialize=yes"
                                            : " materialize=no";
      // Planner decision with the cost estimates behind it. Left out when
      // the source does not resolve — Explain still renders a plan for
      // queries over absent documents.
      if (auto docs = ResolveDocs(item); docs.ok()) {
        ScanKind kind = ScanKind::kCurrent;
        if (item.mode == FromItem::Mode::kSnapshot) {
          kind = ScanKind::kSnapshot;
        } else if (item.mode == FromItem::Mode::kEvery) {
          kind = ScanKind::kAll;
        }
        const ScanPlan plan =
            PlanScan(ctx_, pattern, kind, *docs, options_.scan_strategy);
        out += " strategy=";
        out += ScanStrategyName(plan.strategy);
        out += " [index_cost=" + std::to_string(plan.index_cost) +
               " traversal_cost=" + std::to_string(plan.traversal_cost) + "]";
      }
      out += "\n";
    }
    if (query.where != nullptr) {
      out += "filter: " + query.where->ToString() + "\n";
    }
    out += "output:";
    for (const auto& expr : query.select) {
      out += " " + expr->ToString();
    }
    if (query.distinct) out += " [distinct]";
    out += "\n";
    return out;
  }

 private:
  // ---------------------------------------------------------------- plan

  Status Analyze(const Query& query) {
    for (size_t i = 0; i < query.from.size(); ++i) {
      const FromItem& item = query.from[i];
      if (item.var.empty()) {
        return Status::InvalidArgument("FROM item without variable");
      }
      if (var_index_.contains(item.var)) {
        return Status::InvalidArgument("duplicate variable " + item.var);
      }
      var_index_[item.var] = i;
    }
    std::set<std::string> needs;
    for (const auto& expr : query.select) {
      CollectTreeNeeds(*expr, false, &needs);
    }
    if (query.where != nullptr) {
      CollectTreeNeeds(*query.where, false, &needs);
    }
    for (const std::string& var : needs) {
      if (!var_index_.contains(var)) {
        return Status::InvalidArgument("unbound variable " + var);
      }
    }
    if (!options_.skip_unneeded_reconstruction) {
      for (const auto& [var, idx] : var_index_) needs.insert(var);
    }
    needs_tree_ = std::move(needs);
    CollectPushdowns(query.where.get(), &pushdowns_);
    // Validate remaining variable references.
    for (const auto& expr : query.select) {
      TXML_RETURN_IF_ERROR(CheckVars(*expr));
    }
    if (query.where != nullptr) {
      TXML_RETURN_IF_ERROR(CheckVars(*query.where));
    }
    return Status::OK();
  }

  Status CheckVars(const Expr& expr) {
    if (!expr.var.empty() && expr.kind != Expr::Kind::kString &&
        !var_index_.contains(expr.var)) {
      return Status::InvalidArgument("unbound variable " + expr.var);
    }
    if (expr.lhs != nullptr) TXML_RETURN_IF_ERROR(CheckVars(*expr.lhs));
    if (expr.rhs != nullptr) TXML_RETURN_IF_ERROR(CheckVars(*expr.rhs));
    return Status::OK();
  }

  /// Evaluates a constant time expression (snapshot spec).
  StatusOr<Timestamp> ConstTime(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kDate:
        return expr.date;
      case Expr::Kind::kNow:
        return options_.now;
      case Expr::Kind::kTimeArith: {
        TXML_ASSIGN_OR_RETURN(Timestamp base, ConstTime(*expr.lhs));
        return base.AddMicros(expr.duration_micros);
      }
      default:
        return Status::InvalidArgument(
            "timestamp specification must be a constant time expression");
    }
  }

  /// Builds the pattern for a FROM item: the location path as a chain of
  /// element-name nodes, plus pushed-down word tests.
  StatusOr<Pattern> BuildPattern(const FromItem& item) {
    for (const PathStep& step : item.path.steps()) {
      if (step.is_attribute) {
        return Status::InvalidArgument(
            "FROM paths must bind elements, not attributes");
      }
      if (step.name == "*") {
        return Status::Unimplemented(
            "wildcard steps in FROM paths are not supported");
      }
    }
    // FROM-clause variables bind anywhere in the document (Lorel-style):
    // the first step uses the descendant-or-self axis regardless of a
    // leading '/', so doc("u")/restaurant finds restaurants at any depth.
    std::unique_ptr<PatternNode> root;
    PatternNode* tail_node = nullptr;
    for (size_t i = 0; i < item.path.steps().size(); ++i) {
      const PathStep& step = item.path.steps()[i];
      PatternNode::Axis axis =
          i == 0 ? PatternNode::Axis::kDescendantOrSelf
                 : (step.axis == PathStep::Axis::kChild
                        ? PatternNode::Axis::kChild
                        : PatternNode::Axis::kDescendant);
      auto node = PatternNode::Make(PatternNode::Test::kElementName, axis,
                                    step.name);
      if (root == nullptr) {
        root = std::move(node);
        tail_node = root.get();
      } else {
        tail_node = tail_node->AddChild(std::move(node));
      }
    }
    tail_node->projected = true;
    Pattern pattern{std::move(root)};
    auto it = pushdowns_.find(item.var);
    if (it != pushdowns_.end()) {
      // Graft each predicate's path below the projected node, ending in a
      // word test. The original predicate is still evaluated afterwards
      // (containment is necessary, not sufficient — Section 6.1).
      PatternNode* anchor = pattern.mutable_root();
      while (!anchor->children.empty()) {
        anchor = anchor->children.back().get();
      }
      for (const PushdownPredicate& pred : it->second) {
        PatternNode* tail = anchor;
        if (pred.path_expr->path.has_value()) {
          for (const PathStep& step : pred.path_expr->path->steps()) {
            tail = tail->AddChild(PatternNode::Make(
                PatternNode::Test::kElementName,
                step.axis == PathStep::Axis::kChild
                    ? PatternNode::Axis::kChild
                    : PatternNode::Axis::kDescendant,
                step.name));
          }
        }
        // Bare-variable targets (CONTAINS(R, "w")) test the anchor itself.
        tail->AddChild(PatternNode::Make(PatternNode::Test::kWord,
                                         PatternNode::Axis::kSelf,
                                         pred.word));
      }
      pattern.Finalize();
    }
    return pattern;
  }

  // ---------------------------------------------------------------- bind

  Status BindAll(const Query& query) {
    bindings_.resize(query.from.size());
    for (size_t i = 0; i < query.from.size(); ++i) {
      TXML_RETURN_IF_ERROR(BindFromItem(query.from[i], &bindings_[i]));
    }
    return Status::OK();
  }

  /// Resolves a FROM source to documents: one for doc("url"), all
  /// matching for collection("prefix*") — possibly none.
  StatusOr<std::vector<const VersionedDocument*>> ResolveDocs(
      const FromItem& item) {
    std::vector<const VersionedDocument*> docs;
    if (!item.is_collection) {
      const VersionedDocument* doc = ctx_.store->FindByUrl(item.url);
      if (doc == nullptr) {
        return Status::NotFound("no document at '" + item.url + "'");
      }
      docs.push_back(doc);
      return docs;
    }
    std::string_view spec = item.url;
    bool prefix = !spec.empty() && spec.back() == '*';
    if (prefix) spec.remove_suffix(1);
    for (const VersionedDocument* doc : ctx_.store->AllDocuments()) {
      if (prefix ? StartsWith(doc->url(), spec) : doc->url() == spec) {
        docs.push_back(doc);
      }
    }
    return docs;
  }

  Status BindFromItem(const FromItem& item, std::vector<Binding>* out) {
    TXML_ASSIGN_OR_RETURN(std::vector<const VersionedDocument*> docs,
                          ResolveDocs(item));
    if (docs.empty()) return Status::OK();
    TXML_ASSIGN_OR_RETURN(Pattern pattern, BuildPattern(item));
    bool need_tree = needs_tree_.contains(item.var);

    // One scan serves every document of the source; matches are
    // partitioned per document below. The planner picks the scan's arm per
    // FROM item: the FTI multiway join, or direct pattern matching over
    // materialized trees (the only arm that works without an index).
    switch (item.mode) {
      case FromItem::Mode::kCurrent: {
        const ScanPlan plan = PlanScan(ctx_, pattern, ScanKind::kCurrent,
                                       docs, options_.scan_strategy);
        NoteScanPlan(plan);
        TXML_ASSIGN_OR_RETURN(
            std::vector<ScanMatch> matches,
            plan.strategy == ScanStrategy::kTraversal
                ? PatternScanCurrentTraversal(ctx_, pattern, docs)
                : PatternScanCurrent(ctx_, pattern));
        for (const VersionedDocument* doc : docs) {
          TXML_RETURN_IF_ERROR(BindSnapshotMatches(
              matches, pattern, *doc, need_tree,
              /*snapshot_version=*/doc->version_count(), out));
        }
        return Status::OK();
      }
      case FromItem::Mode::kSnapshot: {
        TXML_ASSIGN_OR_RETURN(Timestamp t, ConstTime(*item.snapshot_time));
        const ScanPlan plan = PlanScan(ctx_, pattern, ScanKind::kSnapshot,
                                       docs, options_.scan_strategy);
        NoteScanPlan(plan);
        TXML_ASSIGN_OR_RETURN(
            std::vector<ScanMatch> matches,
            plan.strategy == ScanStrategy::kTraversal
                ? TPatternScanTraversal(ctx_, pattern, t, docs)
                : TPatternScan(ctx_, pattern, t));
        for (const VersionedDocument* doc : docs) {
          auto version = doc->delta_index().VersionAt(t);
          if (!version.has_value() || !doc->ExistsAt(t)) {
            continue;  // this document absent at t
          }
          TXML_RETURN_IF_ERROR(BindSnapshotMatches(matches, pattern, *doc,
                                                   need_tree, *version, out));
        }
        return Status::OK();
      }
      case FromItem::Mode::kEvery: {
        const ScanPlan plan = PlanScan(ctx_, pattern, ScanKind::kAll, docs,
                                       options_.scan_strategy);
        NoteScanPlan(plan);
        TXML_ASSIGN_OR_RETURN(
            std::vector<ScanMatch> matches,
            plan.strategy == ScanStrategy::kTraversal
                ? TPatternScanAllTraversal(ctx_, pattern, docs)
                : TPatternScanAll(ctx_, pattern));
        for (const VersionedDocument* doc : docs) {
          TXML_RETURN_IF_ERROR(
              BindEveryMatches(matches, pattern, *doc, need_tree, out));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unreachable");
  }

  void NoteScanPlan(const ScanPlan& plan) {
    ++(plan.strategy == ScanStrategy::kTraversal ? stats_->scans_traversal
                                                 : stats_->scans_index);
    if (plan.fell_back) ++stats_->strategy_fallbacks;
  }

  /// Resolves the CREATE/DELETE TIME strategy for this context and tallies
  /// the decision.
  LifetimeStrategy LifetimePlan() {
    bool fell_back = false;
    LifetimeStrategy strategy =
        PlanLifetime(ctx_, options_.lifetime_strategy, &fell_back);
    if (fell_back) ++stats_->strategy_fallbacks;
    ++(strategy == LifetimeStrategy::kIndex ? stats_->lifetime_index_lookups
                                            : stats_->lifetime_traversals);
    return strategy;
  }

  Status BindSnapshotMatches(const std::vector<ScanMatch>& matches,
                             const Pattern& pattern,
                             const VersionedDocument& doc, bool need_tree,
                             VersionNum snapshot_version,
                             std::vector<Binding>* out) {
    std::set<Xid> seen;
    for (const ScanMatch& match : matches) {
      if (match.doc_id != doc.doc_id()) continue;
      Teid teid = match.ProjectedTeid(pattern);
      if (!seen.insert(teid.eid.xid).second) continue;  // distinct elements
      Binding binding;
      binding.teid = teid;
      binding.validity = match.validity;
      // Anchor the TEID inside the snapshot version, so version-navigation
      // and DIFF resolve the version the query actually asked about; the
      // materialized branch refines it to the element's own stamp.
      binding.teid.timestamp =
          doc.delta_index().TimestampOf(snapshot_version);
      if (need_tree) {
        TXML_ASSIGN_OR_RETURN(
            std::shared_ptr<const XmlNode> snapshot,
            SnapshotOf(doc, snapshot_version));
        const XmlNode* element = snapshot->xid() == teid.eid.xid
                                     ? snapshot.get()
                                     : snapshot->FindByXid(teid.eid.xid);
        if (element == nullptr) {
          return Status::Internal("scan match not present in snapshot");
        }
        // Alias into the cached snapshot: no per-element clone.
        binding.tree = std::shared_ptr<const XmlNode>(snapshot, element);
        binding.teid.timestamp = element->timestamp();
      }
      out->push_back(std::move(binding));
    }
    return Status::OK();
  }

  Status BindEveryMatches(const std::vector<ScanMatch>& matches,
                          const Pattern& pattern,
                          const VersionedDocument& doc, bool need_tree,
                          std::vector<Binding>* out) {
    // [EVERY] binds one row per *element version* (Q3 lists the price
    // history per version of the restaurant element), so element histories
    // are always enumerated — TIME(), PREVIOUS() and DIFF() depend on that
    // granularity even when no content is read.
    //
    // All matched elements of the document share a single backward walk
    // through the delta chain (the paper's future-work goal: "reduce the
    // number of delta versions that have to be retrieved").
    struct ElementState {
      std::vector<TimeInterval> runs;  // coalesced pattern-match runs
      uint64_t prev_hash = 0;
      bool prev_present = false;
      std::vector<Binding> collected;  // most recent first
    };
    std::map<Xid, ElementState> elements;
    Timestamp lo = Timestamp::Infinity();
    Timestamp hi = Timestamp::NegInfinity();
    for (const ScanMatch& match : matches) {
      if (match.doc_id != doc.doc_id()) continue;
      Teid teid = match.ProjectedTeid(pattern);
      elements[teid.eid.xid].runs.push_back(match.validity);
      if (match.validity.start < lo) lo = match.validity.start;
      if (match.validity.end > hi) hi = match.validity.end;
    }
    if (elements.empty()) return Status::OK();
    for (auto& [xid, state] : elements) {
      state.runs = Coalesce(std::move(state.runs));
    }

    TXML_RETURN_IF_ERROR(WalkDocumentVersionsBackward(
        doc, lo, hi,
        [&](VersionNum /*v*/, const TimeInterval& validity,
            const XmlNode& tree) {
          ++stats_->snapshot_reconstructions;
          // One traversal finds every tracked element in this version.
          std::unordered_map<Xid, const XmlNode*> found;
          CollectTracked(tree, elements, &found);
          for (auto& [xid, state] : elements) {
            bool in_run = false;
            for (const TimeInterval& run : state.runs) {
              if (run.Overlaps(validity)) {
                in_run = true;
                break;
              }
            }
            auto it = found.find(xid);
            if (!in_run || it == found.end()) {
              state.prev_present = false;
              continue;
            }
            const XmlNode* element = it->second;
            uint64_t hash = SubtreeHash(*element);
            if (state.prev_present && !state.collected.empty() &&
                hash == state.prev_hash) {
              // Unchanged from the (more recent) neighbouring version:
              // extend that entry's validity backwards.
              state.collected.back().validity.start = validity.start;
              state.collected.back().teid.timestamp = element->timestamp();
            } else {
              Binding binding;
              binding.teid =
                  Teid{Eid{doc.doc_id(), xid}, element->timestamp()};
              binding.validity = validity;
              if (need_tree) {
                binding.tree =
                    std::shared_ptr<const XmlNode>(element->Clone().release());
              }
              state.collected.push_back(std::move(binding));
            }
            state.prev_hash = hash;
            state.prev_present = true;
          }
        }));

    // Emit oldest-first per element, elements in XID order.
    for (auto& [xid, state] : elements) {
      for (auto it = state.collected.rbegin(); it != state.collected.rend();
           ++it) {
        out->push_back(std::move(*it));
      }
    }
    return Status::OK();
  }

  /// Records the tracked elements present in one version's tree.
  template <typename ElementMap>
  static void CollectTracked(const XmlNode& node, const ElementMap& tracked,
                             std::unordered_map<Xid, const XmlNode*>* found) {
    if (tracked.contains(node.xid())) {
      found->emplace(node.xid(), &node);
    }
    for (const auto& child : node.children()) {
      CollectTracked(*child, tracked, found);
    }
  }

  /// Reconstruction cache: one materialized tree per (doc, version). The
  /// local map serves repeats within this execution; the shared cache of
  /// QueryContext (when present) serves repeats across executions and
  /// threads.
  StatusOr<std::shared_ptr<const XmlNode>> SnapshotOf(
      const VersionedDocument& doc, VersionNum version) {
    auto key = std::make_pair(doc.doc_id(), version);
    auto it = snapshot_cache_.find(key);
    if (it != snapshot_cache_.end()) return it->second;
    if (ctx_.snapshot_cache != nullptr) {
      if (auto shared = ctx_.snapshot_cache->Lookup(doc.doc_id(), version)) {
        ++stats_->snapshot_cache_hits;
        snapshot_cache_[key] = shared;
        return shared;
      }
    }
    ++stats_->snapshot_reconstructions;
    std::shared_ptr<const XmlNode> shared;
    if (version == doc.version_count() && !doc.deleted()) {
      if (ctx_.snapshot_cache != nullptr) {
        // Shared entries outlive this execution, so they must own their
        // tree: the stored current version is mutated/replaced by the next
        // append and may only be aliased within one execution.
        shared = std::shared_ptr<const XmlNode>(doc.current()->Clone());
      } else {
        // Current version, single execution: alias the stored tree.
        shared = std::shared_ptr<const XmlNode>(doc.current(),
                                                [](const XmlNode*) {});
        snapshot_cache_[key] = shared;
        return shared;
      }
    } else {
      TXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> tree,
                            doc.ReconstructVersion(version));
      shared = std::shared_ptr<const XmlNode>(std::move(tree));
    }
    if (ctx_.snapshot_cache != nullptr) {
      ctx_.snapshot_cache->Insert(doc.doc_id(), version, shared);
    }
    snapshot_cache_[key] = shared;
    return shared;
  }

  // ---------------------------------------------------------------- eval

  StatusOr<XmlDocument> Evaluate(const Query& query) {
    bool aggregate = false;
    for (const auto& expr : query.select) {
      if (expr->kind == Expr::Kind::kAggregate) aggregate = true;
    }
    if (aggregate && query.select.size() != 1) {
      for (const auto& expr : query.select) {
        if (expr->kind != Expr::Kind::kAggregate) {
          return Status::InvalidArgument(
              "cannot mix aggregates and plain expressions without grouping");
        }
      }
    }

    auto results = XmlNode::Element("results");
    std::set<std::string> distinct_seen;
    std::vector<std::vector<Value>> aggregate_inputs(query.select.size());

    Row row(bindings_.size(), nullptr);
    Status status = Status::OK();
    // Nested-loop cross product with WHERE filtering.
    ForEachRow(0, &row, [&](const Row& complete) {
      if (!status.ok()) return;
      ++stats_->rows_considered;
      if (query.where != nullptr) {
        auto pass = EvalPredicate(*query.where, complete);
        if (!pass.ok()) {
          status = pass.status();
          return;
        }
        if (!*pass) return;
      }
      if (aggregate) {
        for (size_t i = 0; i < query.select.size(); ++i) {
          const Expr& arg = *query.select[i]->lhs;
          if (arg.kind == Expr::Kind::kVar &&
              BindingOf(arg.var, complete).tree == nullptr) {
            // Counting-style aggregate over an unmaterialized binding:
            // each row contributes one element (the Q2 fast path).
            aggregate_inputs[i].push_back(Value::Number(1));
            continue;
          }
          auto value = Eval(arg, complete);
          if (!value.ok()) {
            status = value.status();
            return;
          }
          aggregate_inputs[i].push_back(std::move(*value));
        }
        return;
      }
      auto result = RenderRow(query, complete);
      if (!result.ok()) {
        status = result.status();
        return;
      }
      if (query.distinct) {
        std::string fingerprint = SerializeXml(**result);
        if (!distinct_seen.insert(fingerprint).second) return;
      }
      ++stats_->rows_emitted;
      results->AddChild(std::move(*result));
    });
    TXML_RETURN_IF_ERROR(status);

    if (aggregate) {
      auto result = XmlNode::Element("result");
      for (size_t i = 0; i < query.select.size(); ++i) {
        TXML_ASSIGN_OR_RETURN(
            Value value,
            Aggregate(query.select[i]->agg, aggregate_inputs[i]));
        AppendValue(value, result.get());
      }
      ++stats_->rows_emitted;
      results->AddChild(std::move(result));
    }
    return XmlDocument(std::move(results));
  }

  template <typename Fn>
  void ForEachRow(size_t depth, Row* row, Fn&& fn) {
    if (depth == bindings_.size()) {
      fn(*row);
      return;
    }
    for (const Binding& binding : bindings_[depth]) {
      (*row)[depth] = &binding;
      ForEachRow(depth + 1, row, fn);
    }
    (*row)[depth] = nullptr;
  }

  StatusOr<std::unique_ptr<XmlNode>> RenderRow(const Query& query,
                                               const Row& row) {
    auto result = XmlNode::Element("result");
    for (const auto& expr : query.select) {
      TXML_ASSIGN_OR_RETURN(Value value, Eval(*expr, row));
      AppendValue(value, result.get());
    }
    return result;
  }

  void AppendValue(const Value& value, XmlNode* result) {
    switch (value.kind) {
      case Value::Kind::kNull:
        result->AddChild(XmlNode::Element("null"));
        return;
      case Value::Kind::kString:
      case Value::Kind::kNumber:
      case Value::Kind::kTime:
        result->AddChild(XmlNode::Text(ScalarsOf(value)[0]));
        return;
      case Value::Kind::kNodes:
        for (const XmlNode* node : value.nodes) {
          if (node->is_attribute()) {
            auto holder = XmlNode::Element("attribute");
            holder->AddChild(XmlNode::Attribute("name", node->name()));
            holder->AddChild(XmlNode::Text(node->value()));
            result->AddChild(std::move(holder));
          } else {
            result->AddChild(node->Clone());
          }
        }
        return;
    }
  }

  const Binding& BindingOf(const std::string& var, const Row& row) const {
    return *row[var_index_.at(var)];
  }

  StatusOr<bool> EvalPredicate(const Expr& expr, const Row& row) {
    if (expr.kind == Expr::Kind::kNot) {
      TXML_ASSIGN_OR_RETURN(bool inner, EvalPredicate(*expr.lhs, row));
      return !inner;
    }
    if (expr.kind == Expr::Kind::kContains) {
      TXML_ASSIGN_OR_RETURN(Value target, Eval(*expr.lhs, row));
      std::vector<std::string> words = TokenizeWords(expr.rhs->str);
      for (const XmlNode* node : target.nodes) {
        bool all = true;
        for (const std::string& word : words) {
          bool has;
          if (node->is_element()) {
            has = ElementDirectlyContainsWord(*node, word);
          } else {
            has = false;
            for (const std::string& token : TokenizeWords(node->value())) {
              if (token == word) {
                has = true;
                break;
              }
            }
          }
          if (!has) {
            all = false;
            break;
          }
        }
        if (all) return true;  // existential over the node set
      }
      return false;
    }
    if (expr.kind == Expr::Kind::kBinary) {
      if (expr.op == Expr::Op::kAnd) {
        TXML_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.lhs, row));
        if (!lhs) return false;
        return EvalPredicate(*expr.rhs, row);
      }
      if (expr.op == Expr::Op::kOr) {
        TXML_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.lhs, row));
        if (lhs) return true;
        return EvalPredicate(*expr.rhs, row);
      }
      if (expr.op == Expr::Op::kIdEq) {
        // Node identity: EID comparison (Section 7.4's '==').
        if (expr.lhs->kind != Expr::Kind::kVar ||
            expr.rhs->kind != Expr::Kind::kVar) {
          return Status::InvalidArgument(
              "'==' compares binding variables (EID identity)");
        }
        return BindingOf(expr.lhs->var, row).teid.eid ==
               BindingOf(expr.rhs->var, row).teid.eid;
      }
      TXML_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs, row));
      TXML_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs, row));
      return CompareValues(lhs, rhs, expr.op);
    }
    TXML_ASSIGN_OR_RETURN(Value value, Eval(expr, row));
    return value.kind != Value::Kind::kNull &&
           (value.kind != Value::Kind::kNodes || !value.nodes.empty());
  }

  StatusOr<Value> Eval(const Expr& expr, const Row& row) {
    switch (expr.kind) {
      case Expr::Kind::kString:
        return Value::String(expr.str);
      case Expr::Kind::kNumber:
        return Value::Number(expr.number);
      case Expr::Kind::kDate:
        return Value::Time(expr.date);
      case Expr::Kind::kNow:
        return Value::Time(options_.now);
      case Expr::Kind::kTimeArith: {
        TXML_ASSIGN_OR_RETURN(Value base, Eval(*expr.lhs, row));
        if (base.kind != Value::Kind::kTime) {
          return Status::InvalidArgument(
              "time arithmetic needs a time operand");
        }
        return Value::Time(base.time.AddMicros(expr.duration_micros));
      }
      case Expr::Kind::kVar: {
        const Binding& binding = BindingOf(expr.var, row);
        if (binding.tree == nullptr) {
          return Status::Internal("binding for " + expr.var +
                                  " was not materialized");
        }
        Value value;
        value.kind = Value::Kind::kNodes;
        value.nodes = {binding.tree.get()};
        return value;
      }
      case Expr::Kind::kPath: {
        const Binding& binding = BindingOf(expr.var, row);
        if (binding.tree == nullptr) {
          return Status::Internal("binding for " + expr.var +
                                  " was not materialized");
        }
        Value value;
        value.kind = Value::Kind::kNodes;
        value.nodes = expr.path->EvaluateRelative(*binding.tree);
        return value;
      }
      case Expr::Kind::kTimeOf:
        return Value::Time(BindingOf(expr.var, row).teid.timestamp);
      case Expr::Kind::kCreateTime: {
        TXML_ASSIGN_OR_RETURN(Timestamp ts,
                              CreTime(ctx_, BindingOf(expr.var, row).teid,
                                      LifetimePlan()));
        return Value::Time(ts);
      }
      case Expr::Kind::kDeleteTime: {
        TXML_ASSIGN_OR_RETURN(
            std::optional<Timestamp> ts,
            DelTime(ctx_, BindingOf(expr.var, row).teid, LifetimePlan()));
        if (!ts.has_value()) return Value::Null();
        return Value::Time(*ts);
      }
      case Expr::Kind::kNav:
        return EvalNav(expr, row);
      case Expr::Kind::kDiff:
        return EvalDiff(expr, row);
      case Expr::Kind::kAggregate:
        return Status::InvalidArgument(
            "aggregate in unexpected position: " + expr.ToString());
      case Expr::Kind::kBinary:
      case Expr::Kind::kNot:
      case Expr::Kind::kContains: {
        TXML_ASSIGN_OR_RETURN(bool pass, EvalPredicate(expr, row));
        return Value::Number(pass ? 1 : 0);
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  /// CURRENT/PREVIOUS/NEXT(R): resolve the target timestamp through the
  /// delta index (Section 7.3.7), Reconstruct, and optionally apply a
  /// trailing path.
  StatusOr<Value> EvalNav(const Expr& expr, const Row& row) {
    const Binding& binding = BindingOf(expr.var, row);
    std::optional<Timestamp> target;
    switch (expr.nav) {
      case Expr::Nav::kCurrent: {
        TXML_ASSIGN_OR_RETURN(target, CurrentTS(ctx_, binding.teid.eid));
        break;
      }
      case Expr::Nav::kPrevious: {
        TXML_ASSIGN_OR_RETURN(target, PreviousTS(ctx_, binding.teid));
        break;
      }
      case Expr::Nav::kNext: {
        TXML_ASSIGN_OR_RETURN(target, NextTS(ctx_, binding.teid));
        break;
      }
    }
    if (!target.has_value()) return Value::Null();
    auto tree = Reconstruct(ctx_, Teid{binding.teid.eid, *target});
    if (tree.status().IsNotFound()) {
      return Value::Null();  // element absent in that version
    }
    if (!tree.ok()) return tree.status();
    Value value;
    value.kind = Value::Kind::kNodes;
    std::shared_ptr<const XmlNode> owned(tree->release());
    value.owned.push_back(owned);
    if (expr.path.has_value()) {
      value.nodes = expr.path->EvaluateRelative(*owned);
    } else {
      value.nodes = {owned.get()};
    }
    return value;
  }

  StatusOr<Value> EvalDiff(const Expr& expr, const Row& row) {
    auto teid_of = [&](const Expr& operand) -> StatusOr<Teid> {
      if (operand.kind == Expr::Kind::kVar) {
        return BindingOf(operand.var, row).teid;
      }
      if (operand.kind == Expr::Kind::kNav && !operand.path.has_value()) {
        const Binding& binding = BindingOf(operand.var, row);
        std::optional<Timestamp> target;
        switch (operand.nav) {
          case Expr::Nav::kCurrent: {
            TXML_ASSIGN_OR_RETURN(target, CurrentTS(ctx_, binding.teid.eid));
            break;
          }
          case Expr::Nav::kPrevious: {
            TXML_ASSIGN_OR_RETURN(target, PreviousTS(ctx_, binding.teid));
            break;
          }
          case Expr::Nav::kNext: {
            TXML_ASSIGN_OR_RETURN(target, NextTS(ctx_, binding.teid));
            break;
          }
        }
        if (!target.has_value()) {
          return Status::NotFound("no such version for DIFF operand");
        }
        return Teid{binding.teid.eid, *target};
      }
      return Status::InvalidArgument(
          "DIFF operands must be variables or CURRENT/PREVIOUS/NEXT(var)");
    };
    auto from = teid_of(*expr.lhs);
    if (!from.ok()) {
      if (from.status().IsNotFound()) return Value::Null();
      return from.status();
    }
    auto to = teid_of(*expr.rhs);
    if (!to.ok()) {
      if (to.status().IsNotFound()) return Value::Null();
      return to.status();
    }
    TXML_ASSIGN_OR_RETURN(XmlDocument delta, DiffOp(ctx_, *from, *to));
    Value value;
    value.kind = Value::Kind::kNodes;
    std::shared_ptr<const XmlNode> owned(delta.ReleaseRoot().release());
    value.owned.push_back(owned);
    value.nodes = {owned.get()};
    return value;
  }

  StatusOr<Value> Aggregate(Expr::Agg agg, const std::vector<Value>& inputs) {
    if (agg == Expr::Agg::kCount) {
      size_t count = 0;
      for (const Value& value : inputs) {
        if (value.kind == Value::Kind::kNodes) {
          count += value.nodes.size();
        } else if (value.kind != Value::Kind::kNull) {
          ++count;
        }
      }
      return Value::Number(static_cast<double>(count));
    }
    // SUM over node sets that are not numbers degenerates to a count —
    // this is how the paper's Q2 `SELECT SUM(R)` counts restaurants.
    double sum = 0, min = 0, max = 0;
    size_t numeric = 0, non_numeric = 0;
    for (const Value& value : inputs) {
      for (const std::string& scalar : ScalarsOf(value)) {
        double n;
        if (TryParseNumber(scalar, &n)) {
          if (numeric == 0 || n < min) min = n;
          if (numeric == 0 || n > max) max = n;
          sum += n;
          ++numeric;
        } else {
          ++non_numeric;
        }
      }
    }
    switch (agg) {
      case Expr::Agg::kSum:
        if (numeric == 0) {
          return Value::Number(static_cast<double>(non_numeric));
        }
        return Value::Number(sum);
      case Expr::Agg::kMin:
        if (numeric == 0) return Value::Null();
        return Value::Number(min);
      case Expr::Agg::kMax:
        if (numeric == 0) return Value::Null();
        return Value::Number(max);
      case Expr::Agg::kAvg:
        if (numeric == 0) return Value::Null();
        return Value::Number(sum / static_cast<double>(numeric));
      case Expr::Agg::kCount:
        break;  // handled above
    }
    return Status::Internal("unreachable aggregate");
  }

  QueryContext ctx_;
  const ExecOptions& options_;
  ExecStats* stats_;

  std::unordered_map<std::string, size_t> var_index_;
  std::set<std::string> needs_tree_;
  std::unordered_map<std::string, std::vector<PushdownPredicate>> pushdowns_;
  std::vector<std::vector<Binding>> bindings_;
  std::map<std::pair<DocId, VersionNum>, std::shared_ptr<const XmlNode>>
      snapshot_cache_;
};

}  // namespace

StatusOr<XmlDocument> QueryExecutor::Execute(const Query& query) {
  return Execute(query, &stats_);
}

StatusOr<XmlDocument> QueryExecutor::Execute(std::string_view query_text,
                                             ExecStats* stats) const {
  TXML_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Execute(query, stats);
}

StatusOr<XmlDocument> QueryExecutor::Execute(const Query& query,
                                             ExecStats* stats) const {
  Execution execution(ctx_, options_, stats);
  return execution.Run(query);
}

StatusOr<std::string> QueryExecutor::Explain(std::string_view query_text) {
  TXML_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Explain(query);
}

StatusOr<std::string> QueryExecutor::Explain(const Query& query) {
  Execution execution(ctx_, options_, &stats_);
  return execution.Explain(query);
}

}  // namespace txml
