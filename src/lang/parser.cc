#include "src/lang/parser.h"

#include <utility>

#include "src/lang/lexer.h"
#include "src/util/macros.h"

namespace txml {
namespace {

/// Hard cap on expression nesting. Every recursive production
/// (parenthesised conditions, NOT chains, nested DIFF/aggregate/CONTAINS
/// arguments) descends through ParseComparison or ParsePrimary; without a
/// cap, an input like "SELECT SUM(SUM(SUM(…" recurses once per byte and
/// overflows the stack. 64 is far beyond any legitimate query (the test
/// corpus never exceeds depth 6) while keeping worst-case stack use a few
/// hundred KiB below typical 8 MiB limits. The AST destructor recurses to
/// the same depth, so this bound also caps destruction.
constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> Parse() {
    Query query;
    TXML_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (AtKeyword("DISTINCT")) {
      Advance();
      query.distinct = true;
    }
    while (true) {
      auto item = ParseComparison();
      if (!item.ok()) return item.status();
      query.select.push_back(std::move(*item));
      if (!At(TokenKind::kComma)) break;
      Advance();
    }
    TXML_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      auto item = ParseFromItem();
      if (!item.ok()) return item.status();
      query.from.push_back(std::move(*item));
      if (!At(TokenKind::kComma)) break;
      Advance();
    }
    if (AtKeyword("WHERE")) {
      Advance();
      auto cond = ParseOr();
      if (!cond.ok()) return cond.status();
      query.where = std::move(*cond);
    }
    if (!At(TokenKind::kEnd)) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  Token Advance() {
    // The kEnd sentinel is never consumed by a well-behaved caller (every
    // Advance is behind an At/AtKeyword check that kEnd fails), but a slip
    // must stay in bounds rather than index past the vector.
    if (pos_ + 1 >= tokens_.size()) return tokens_.back();
    return tokens_[pos_++];
  }

  /// RAII depth guard for the recursive productions; Enter() non-OK means
  /// the query nests beyond kMaxParseDepth.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser* parser) : parser_(parser) {
      ++parser_->depth_;
    }
    ~DepthGuard() { --parser_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

    Status Enter() const {
      if (parser_->depth_ > kMaxParseDepth) {
        return parser_->Error("query nesting exceeds the depth limit of " +
                              std::to_string(kMaxParseDepth));
      }
      return Status::OK();
    }

   private:
    Parser* parser_;
  };

  Status Error(const std::string& message) const {
    return Status::ParseError("query offset " +
                              std::to_string(Peek().offset) + ": " + message);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (!At(kind)) return Error("expected " + what);
    Advance();
    return Status::OK();
  }

  /// Parses a location path written as tokens: [/|//] name ([/|//] name)*
  /// [/@name]. Returns the reassembled text for PathExpr::Parse.
  StatusOr<PathExpr> ParsePathTokens(bool require_leading_slash) {
    std::string text;
    bool first = true;
    while (true) {
      if (At(TokenKind::kSlash)) {
        text += "/";
        Advance();
      } else if (At(TokenKind::kSlashSlash)) {
        text += "//";
        Advance();
      } else if (first && !require_leading_slash) {
        // Relative path may start directly with a name.
      } else {
        break;
      }
      if (At(TokenKind::kAt)) {
        Advance();
        if (!At(TokenKind::kIdent) && !At(TokenKind::kKeyword)) {
          return Error("expected attribute name after '@'");
        }
        text += "@" + Advance().text;
        break;
      }
      if (At(TokenKind::kStar)) {
        text += "*";
        Advance();
      } else if (At(TokenKind::kIdent)) {
        text += Advance().text;
      } else if (first && !require_leading_slash) {
        return Error("expected path");
      } else {
        return Error("expected name in path");
      }
      first = false;
      if (!At(TokenKind::kSlash) && !At(TokenKind::kSlashSlash)) break;
    }
    if (text.empty()) return Error("expected path");
    return PathExpr::Parse(text);
  }

  StatusOr<FromItem> ParseFromItem() {
    FromItem item;
    if (AtKeyword("COLLECTION")) {
      Advance();
      item.is_collection = true;
    } else {
      TXML_RETURN_IF_ERROR(ExpectKeyword("DOC"));
    }
    TXML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (!At(TokenKind::kString)) return Error("expected document URL string");
    item.url = Advance().text;
    TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));

    if (At(TokenKind::kLBracket)) {
      Advance();
      if (AtKeyword("EVERY")) {
        Advance();
        item.mode = FromItem::Mode::kEvery;
      } else {
        item.mode = FromItem::Mode::kSnapshot;
        auto time_expr = ParseAdditive();
        if (!time_expr.ok()) return time_expr.status();
        item.snapshot_time = std::move(*time_expr);
      }
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }

    auto path = ParsePathTokens(/*require_leading_slash=*/true);
    if (!path.ok()) return path.status();
    item.path = std::move(*path);

    if (AtKeyword("AS")) Advance();
    if (!At(TokenKind::kIdent)) {
      return Error("expected binding variable after FROM path");
    }
    item.var = Advance().text;
    return item;
  }

  StatusOr<std::unique_ptr<Expr>> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (AtKeyword("OR")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = Expr::Op::kOr;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAnd() {
    auto lhs = ParseComparison();
    if (!lhs.ok()) return lhs;
    while (AtKeyword("AND")) {
      Advance();
      auto rhs = ParseComparison();
      if (!rhs.ok()) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = Expr::Op::kAnd;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseComparison() {
    DepthGuard depth(this);
    TXML_RETURN_IF_ERROR(depth.Enter());
    if (AtKeyword("NOT")) {
      Advance();
      auto inner = ParseComparison();
      if (!inner.ok()) return inner;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->lhs = std::move(*inner);
      return node;
    }
    if (At(TokenKind::kLParen)) {
      // Could be a parenthesised condition.
      Advance();
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    Expr::Op op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = Expr::Op::kEq; break;
      case TokenKind::kNe: op = Expr::Op::kNe; break;
      case TokenKind::kLt: op = Expr::Op::kLt; break;
      case TokenKind::kLe: op = Expr::Op::kLe; break;
      case TokenKind::kGt: op = Expr::Op::kGt; break;
      case TokenKind::kGe: op = Expr::Op::kGe; break;
      case TokenKind::kIdEq: op = Expr::Op::kIdEq; break;
      case TokenKind::kSim: op = Expr::Op::kSim; break;
      default:
        return lhs;  // bare expression (e.g. in SELECT list)
    }
    Advance();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->lhs = std::move(*lhs);
    node->rhs = std::move(*rhs);
    return node;
  }

  /// Time arithmetic: base (+|-) N unit, e.g. NOW - 14 DAYS.
  StatusOr<std::unique_ptr<Expr>> ParseAdditive() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      int sign = At(TokenKind::kPlus) ? 1 : -1;
      Advance();
      if (!At(TokenKind::kNumber)) {
        return Error("expected number in time arithmetic");
      }
      double count = Advance().number;
      if (!At(TokenKind::kKeyword)) {
        return Error("expected time unit (DAYS, WEEKS, ...)");
      }
      std::string unit = Advance().text;
      int64_t micros_per_unit;
      if (unit == "DAY" || unit == "DAYS") {
        micros_per_unit = kMicrosPerDay;
      } else if (unit == "WEEK" || unit == "WEEKS") {
        micros_per_unit = 7 * kMicrosPerDay;
      } else if (unit == "HOUR" || unit == "HOURS") {
        micros_per_unit = 3600 * kMicrosPerSecond;
      } else if (unit == "MINUTE" || unit == "MINUTES") {
        micros_per_unit = 60 * kMicrosPerSecond;
      } else if (unit == "SECOND" || unit == "SECONDS") {
        micros_per_unit = kMicrosPerSecond;
      } else {
        return Error("unknown time unit " + unit);
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kTimeArith;
      node->lhs = std::move(*lhs);
      node->duration_micros =
          sign * static_cast<int64_t>(count * static_cast<double>(micros_per_unit));
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrimary() {
    DepthGuard depth(this);
    TXML_RETURN_IF_ERROR(depth.Enter());
    auto node = std::make_unique<Expr>();
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kString:
        node->kind = Expr::Kind::kString;
        node->str = Advance().text;
        return node;
      case TokenKind::kNumber:
        node->kind = Expr::Kind::kNumber;
        node->number = Advance().number;
        return node;
      case TokenKind::kDate:
        node->kind = Expr::Kind::kDate;
        node->date = Advance().date;
        return node;
      case TokenKind::kIdent: {
        // Variable, possibly with a path: R or R/price or R//name.
        node->kind = Expr::Kind::kVar;
        node->var = Advance().text;
        if (At(TokenKind::kSlash) || At(TokenKind::kSlashSlash)) {
          auto path = ParsePathTokens(/*require_leading_slash=*/true);
          if (!path.ok()) return path.status();
          node->kind = Expr::Kind::kPath;
          node->path = std::move(*path);
        }
        return node;
      }
      case TokenKind::kLParen: {
        // Grouped expression in a value position. WHERE-level parentheses
        // are consumed by ParseComparison before ParseAdditive ever runs,
        // so this case covers value contexts: the time-slice bracket and
        // argument lists. ToString() renders time arithmetic as
        // "(NOW - 3 DAYS)", so this case is also what makes the
        // printer/parser round trip close (found by fuzzing).
        Advance();
        auto inner = ParseOr();
        if (!inner.ok()) return inner;
        TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kKeyword:
        return ParseKeywordPrimary();
      default:
        return Error("unexpected token '" + token.text + "'");
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseKeywordPrimary() {
    auto node = std::make_unique<Expr>();
    std::string kw = Advance().text;
    if (kw == "NOW") {
      node->kind = Expr::Kind::kNow;
      return node;
    }
    if (kw == "TIME") {
      node->kind = Expr::Kind::kTimeOf;
      return FinishVarCall(std::move(node));
    }
    if (kw == "CREATE" || kw == "DELETE") {
      // Two-word functions CREATE TIME(R) / DELETE TIME(R).
      if (!AtKeyword("TIME")) return Error("expected TIME after " + kw);
      Advance();
      node->kind = kw == "CREATE" ? Expr::Kind::kCreateTime
                                  : Expr::Kind::kDeleteTime;
      return FinishVarCall(std::move(node));
    }
    if (kw == "CURRENT" || kw == "PREVIOUS" || kw == "NEXT") {
      node->kind = Expr::Kind::kNav;
      node->nav = kw == "CURRENT"    ? Expr::Nav::kCurrent
                  : kw == "PREVIOUS" ? Expr::Nav::kPrevious
                                     : Expr::Nav::kNext;
      auto with_var = FinishVarCall(std::move(node));
      if (!with_var.ok()) return with_var;
      // Optional trailing path: CURRENT(R)/name.
      if (At(TokenKind::kSlash) || At(TokenKind::kSlashSlash)) {
        auto path = ParsePathTokens(/*require_leading_slash=*/true);
        if (!path.ok()) return path.status();
        (*with_var)->path = std::move(*path);
      }
      return with_var;
    }
    if (kw == "CONTAINS") {
      // CONTAINS(R[/path], "words"): true when the addressed element
      // directly contains every word of the literal.
      node->kind = Expr::Kind::kContains;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      auto target = ParsePrimary();
      if (!target.ok()) return target;
      if ((*target)->kind != Expr::Kind::kVar &&
          (*target)->kind != Expr::Kind::kPath) {
        return Error("CONTAINS expects a variable or path as first operand");
      }
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
      if (!At(TokenKind::kString)) {
        return Error("CONTAINS expects a string literal as second operand");
      }
      auto words = std::make_unique<Expr>();
      words->kind = Expr::Kind::kString;
      words->str = Advance().text;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      node->lhs = std::move(*target);
      node->rhs = std::move(words);
      return node;
    }
    if (kw == "DIFF") {
      node->kind = Expr::Kind::kDiff;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      auto lhs = ParsePrimary();
      if (!lhs.ok()) return lhs;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      return node;
    }
    if (kw == "SUM" || kw == "COUNT" || kw == "MIN" || kw == "MAX" ||
        kw == "AVG") {
      node->kind = Expr::Kind::kAggregate;
      node->agg = kw == "SUM"     ? Expr::Agg::kSum
                  : kw == "COUNT" ? Expr::Agg::kCount
                  : kw == "MIN"   ? Expr::Agg::kMin
                  : kw == "MAX"   ? Expr::Agg::kMax
                                  : Expr::Agg::kAvg;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      auto arg = ParsePrimary();
      if (!arg.ok()) return arg;
      TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      node->lhs = std::move(*arg);
      return node;
    }
    return Error("unexpected keyword " + kw);
  }

  /// Parses "( IDENT )" after a one-variable function keyword.
  StatusOr<std::unique_ptr<Expr>> FinishVarCall(std::unique_ptr<Expr> node) {
    TXML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (!At(TokenKind::kIdent)) return Error("expected variable");
    node->var = Advance().text;
    TXML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens)).Parse();
}

}  // namespace txml
