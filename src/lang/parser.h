#ifndef TXML_SRC_LANG_PARSER_H_
#define TXML_SRC_LANG_PARSER_H_

#include <string_view>

#include "src/lang/ast.h"
#include "src/util/statusor.h"

namespace txml {

/// Parses one query of the Section-5 dialect, e.g.
///
///   SELECT R
///   FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R
///   WHERE R/price < 10
///
///   SELECT TIME(R), R/price
///   FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
///   WHERE R/name = "Napoli"
///
///   SELECT DIFF(R1, R2)
///   FROM doc("u")[01/01/2001]/r R1, doc("u")[NOW]/r R2
///   WHERE R1 == R2
StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace txml

#endif  // TXML_SRC_LANG_PARSER_H_
