#include "src/lang/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <unordered_set>

namespace txml {

bool IsKeyword(std::string_view upper) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "SELECT", "DISTINCT", "FROM",    "WHERE",   "AND",     "OR",
      "DOC",    "COLLECTION", "EVERY", "NOW",     "AS",      "TIME",    "CREATE",
      "DELETE", "CURRENT",  "PREVIOUS","NEXT",    "DIFF",    "SUM",
      "COUNT",  "MIN",      "MAX",     "AVG",     "DAY",     "DAYS",
      "WEEK",   "WEEKS",    "HOUR",    "HOURS",   "MINUTE",  "MINUTES",
      "SECOND", "SECONDS",  "NOT",   "CONTAINS",
  };
  return kKeywords.contains(upper);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

/// True if positions [pos, pos+len) are all digits.
bool DigitsAt(std::string_view text, size_t pos, size_t len) {
  if (pos + len > text.size()) return false;
  for (size_t i = 0; i < len; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[pos + i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view query) {
  if (query.size() > kMaxQueryBytes) {
    return Status::ParseError(
        "query of " + std::to_string(query.size()) +
        " bytes exceeds the limit of " + std::to_string(kMaxQueryBytes));
  }
  std::vector<Token> tokens;
  size_t pos = 0;
  auto error = [&](const std::string& message) {
    return Status::ParseError("query offset " + std::to_string(pos) + ": " +
                              message);
  };

  while (pos < query.size()) {
    char c = query[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    Token token;
    token.offset = pos + 1;

    // Date literal dd/mm/yyyy (optionally with hh:mm:ss) — checked before
    // numbers and paths.
    if (DigitsAt(query, pos, 2) && pos + 10 <= query.size() &&
        query[pos + 2] == '/' && DigitsAt(query, pos + 3, 2) &&
        query[pos + 5] == '/' && DigitsAt(query, pos + 6, 4)) {
      size_t len = 10;
      // Optional time part: " hh:mm:ss".
      if (pos + 19 <= query.size() && query[pos + 10] == ' ' &&
          DigitsAt(query, pos + 11, 2) && query[pos + 13] == ':' &&
          DigitsAt(query, pos + 14, 2) && query[pos + 16] == ':' &&
          DigitsAt(query, pos + 17, 2)) {
        len = 19;
      }
      auto date = Timestamp::ParseDate(query.substr(pos, len));
      if (!date.ok()) return date.status();
      token.kind = TokenKind::kDate;
      token.date = *date;
      token.text = std::string(query.substr(pos, len));
      pos += len;
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      while (pos < query.size() &&
             std::isdigit(static_cast<unsigned char>(query[pos]))) {
        ++pos;
      }
      if (pos < query.size() && query[pos] == '.' &&
          DigitsAt(query, pos + 1, 1)) {
        ++pos;
        while (pos < query.size() &&
               std::isdigit(static_cast<unsigned char>(query[pos]))) {
          ++pos;
        }
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(query.substr(start, pos - start));
      // Not std::stod: that throws std::out_of_range for literals beyond
      // double range (e.g. 310 nines), turning a malformed query into a
      // crash. strtod reports the same condition via ERANGE.
      errno = 0;
      token.number = std::strtod(token.text.c_str(), nullptr);
      if (errno == ERANGE) {
        return error("number literal '" + token.text +
                     "' is out of range");
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < query.size() && IsIdentChar(query[pos])) ++pos;
      std::string_view text = query.substr(start, pos - start);
      std::string upper = ToUpperAscii(text);
      if (IsKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = std::move(upper);
      } else {
        token.kind = TokenKind::kIdent;
        token.text = std::string(text);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = ++pos;
      while (pos < query.size() && query[pos] != quote) ++pos;
      if (pos >= query.size()) return error("unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = std::string(query.substr(start, pos - start));
      ++pos;
      tokens.push_back(std::move(token));
      continue;
    }

    auto single = [&](TokenKind kind) {
      token.kind = kind;
      token.text = std::string(1, c);
      ++pos;
    };
    switch (c) {
      case ',': single(TokenKind::kComma); break;
      case '(': single(TokenKind::kLParen); break;
      case ')': single(TokenKind::kRParen); break;
      case '[': single(TokenKind::kLBracket); break;
      case ']': single(TokenKind::kRBracket); break;
      case '@': single(TokenKind::kAt); break;
      case '*': single(TokenKind::kStar); break;
      case '+': single(TokenKind::kPlus); break;
      case '-': single(TokenKind::kMinus); break;
      case '~': single(TokenKind::kSim); break;
      case '/':
        if (pos + 1 < query.size() && query[pos + 1] == '/') {
          token.kind = TokenKind::kSlashSlash;
          token.text = "//";
          pos += 2;
        } else {
          single(TokenKind::kSlash);
        }
        break;
      case '=':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kIdEq;
          token.text = "==";
          pos += 2;
        } else {
          single(TokenKind::kEq);
        }
        break;
      case '!':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kNe;
          token.text = "!=";
          pos += 2;
        } else {
          return error("unexpected '!'");
        }
        break;
      case '<':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kLe;
          token.text = "<=";
          pos += 2;
        } else {
          single(TokenKind::kLt);
        }
        break;
      case '>':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kGe;
          token.text = ">=";
          pos += 2;
        } else {
          single(TokenKind::kGt);
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = query.size() + 1;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace txml
