// Seed-corpus generator. Writes deterministic starting inputs for the
// three fuzz harnesses under <out-dir>/{query,wire,wal}/. The committed
// corpus under fuzz/corpus/ was produced by this tool; regenerate with
//
//   build/fuzz/gen_seed_corpus fuzz/corpus
//
// after changing a wire envelope or the WAL framing, so the seeds keep
// describing the current formats.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/wire.h"
#include "src/service/request.h"
#include "src/storage/wal.h"
#include "src/util/timestamp.h"

namespace txml {
namespace {

bool WriteSeed(const std::filesystem::path& dir, const std::string& name,
               std::string_view bytes) {
  std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

bool WriteQuerySeeds(const std::filesystem::path& dir) {
  // Representative spread of the dialect: every operator family the
  // parser has a production for, plus near-miss malformed inputs (the
  // mutation starting points that reach error paths fastest).
  const struct {
    const char* name;
    const char* text;
  } kSeeds[] = {
      {"select_simple", "SELECT R FROM doc(\"u\")/restaurant R"},
      {"select_timeslice",
       "SELECT R FROM doc(\"u\")[26/01/2001]/restaurant R"},
      {"select_every_where",
       "SELECT TIME(R), R/price FROM doc(\"u\")[EVERY]/r R "
       "WHERE R/name = \"Napoli\""},
      {"select_distinct_current",
       "SELECT DISTINCT CURRENT(R)/name FROM doc(\"u\")/r R"},
      {"select_diff",
       "SELECT DIFF(CURRENT(R), PREVIOUS(R)) FROM doc(\"u\")/r R"},
      {"select_aggregates",
       "SELECT SUM(R/price), COUNT(R), MIN(R/price), MAX(R/price), "
       "AVG(R/price) FROM doc(\"u\")[EVERY]/r R"},
      {"select_time_arith",
       "SELECT R FROM doc(\"u\")[NOW - 3 DAYS]/r R"},
      {"select_where_boolean",
       "SELECT R FROM doc(\"u\")/r R WHERE NOT (R/a = 1 AND R/b != 2) "
       "OR R/c >= 3"},
      {"select_contains",
       "SELECT R FROM doc(\"u\")/r R WHERE CONTAINS(R/name, \"pizza\")"},
      {"select_attr_descendant",
       "SELECT R//item/@id FROM collection(\"c\")/r R"},
      {"select_lifetime_mixed_scans",
       "SELECT CREATE TIME(R), DELETE TIME(R), COUNT(R) "
       "FROM doc(\"u\")[EVERY]/guide/item R, doc(\"v\")/item S "
       "WHERE R/name = \"n1\""},
      {"malformed_truncated", "SELECT R FROM doc(\"u\""},
      {"malformed_tokens", "SELECT @@ ??? !!"},
  };
  for (const auto& seed : kSeeds) {
    if (!WriteSeed(dir, seed.name, seed.text)) return false;
  }
  return true;
}

bool WriteWireSeeds(const std::filesystem::path& dir) {
  // Selector-byte convention of FuzzWireDecode: byte % 15 picks the
  // decoder, remaining bytes are the envelope payload.
  QueryRequest query;
  query.query_text = "SELECT R FROM doc(\"u\")[EVERY]/r R";
  query.pretty = false;

  PutRequest put;
  put.url = "http://example.com/menu.xml";
  put.xml_text = "<menu><price>12.5</price></menu>";
  put.timestamp = Timestamp::FromDate(2001, 1, 26);

  VacuumRequest vacuum;
  vacuum.drop_before = Timestamp::FromDate(2000, 1, 1);
  vacuum.coarsen_older_than = Timestamp::FromDate(2001, 1, 1);
  vacuum.keep_every = 4;

  ResponseHeader header;
  header.status_code = StatusCode::kNotFound;
  header.error_message = "no such document";
  header.payload_bytes = 0;

  ReplSubscribeRequest subscribe;
  subscribe.from_sequence = 42;
  subscribe.follower_name = "seed-follower";

  ReplBatch batch;
  batch.leader_last_sequence = 9;
  for (uint64_t sequence = 8; sequence <= 9; ++sequence) {
    WalRecord record;
    record.sequence = sequence;
    record.type = WalRecordType::kPut;
    record.ts = Timestamp::FromDate(2001, 1, static_cast<int>(sequence));
    record.url = "u";
    record.payload = "<r v=\"" + std::to_string(sequence) + "\"/>";
    batch.records.push_back(std::move(record));
  }

  ReplHeartbeat heartbeat;
  heartbeat.leader_last_sequence = 9;

  ReplAck ack;
  ack.applied_sequence = 8;

  WriteBatchRequest write_batch;
  for (int i = 0; i < 2; ++i) {
    WriteBatchItem item;
    item.url = "u";
    item.xml_text = "<r v=\"" + std::to_string(i) + "\"/>";
    item.timestamp = Timestamp::FromDate(2001, 1, 26 + i);
    write_batch.items.push_back(std::move(item));
  }

  CheckpointRequest checkpoint_request;
  checkpoint_request.resume_offset = 4096;
  checkpoint_request.resume_crc32c = 0xDEADBEEF;
  checkpoint_request.follower_name = "seed-follower";

  CheckpointMeta checkpoint_meta;
  checkpoint_meta.covered_sequence = 9;
  checkpoint_meta.total_bytes = 48;
  checkpoint_meta.archive_crc32c = 0x12345678;
  checkpoint_meta.start_offset = 16;
  checkpoint_meta.files = {{"store.txml", 32}, {"checkpoint.txml", 16}};

  CheckpointChunk checkpoint_chunk;
  checkpoint_chunk.offset = 16;
  checkpoint_chunk.data = "<store version=\"1\"/>";
  checkpoint_chunk.crc32c = 0x9ABCDEF0;

  const struct {
    const char* name;
    uint8_t selector;
    std::string payload;
  } kSeeds[] = {
      {"query_request", 0, EncodeQueryRequest(query)},
      {"put_request", 1, EncodePutRequest(put)},
      {"vacuum_request", 2, EncodeVacuumRequest(vacuum)},
      {"response_header", 3, EncodeResponseHeader(header)},
      {"response_end", 4, EncodeResponseEnd(12345)},
      {"repl_subscribe", 5, EncodeReplSubscribe(subscribe)},
      {"repl_batch", 6, EncodeReplBatch(batch)},
      {"repl_heartbeat", 7, EncodeReplHeartbeat(heartbeat)},
      {"repl_ack", 8, EncodeReplAck(ack)},
      {"stats_request", 9, EncodeStatsRequest(StatsRequest{})},
      {"write_batch_request", 10, EncodeWriteBatchRequest(write_batch)},
      {"checkpoint_request", 11, EncodeCheckpointRequest(checkpoint_request)},
      {"checkpoint_meta", 12, EncodeCheckpointMeta(checkpoint_meta)},
      {"checkpoint_chunk", 13, EncodeCheckpointChunk(checkpoint_chunk)},
      // kResponseChunk frames carry raw payload bytes (no envelope codec);
      // selector 14 drives the frame-layer AppendFrame invariants instead.
      {"response_chunk", 14, "<menu><price>12.5</price></menu>"},
  };
  for (const auto& seed : kSeeds) {
    std::string bytes(1, static_cast<char>(seed.selector));
    bytes += seed.payload;
    if (!WriteSeed(dir, seed.name, bytes)) return false;
    // Truncated twin: same selector, payload cut mid-envelope — lands in
    // the decoder's bounds-check paths immediately.
    std::string truncated = bytes.substr(0, 1 + seed.payload.size() / 2);
    if (!WriteSeed(dir, std::string(seed.name) + "_truncated", truncated)) {
      return false;
    }
  }
  return true;
}

bool WriteWalSeeds(const std::filesystem::path& dir,
                   const std::filesystem::path& scratch) {
  // Build a real log through the production append path, then snapshot
  // its bytes: the fuzzer starts from a well-formed file and mutates
  // toward the interesting torn/corrupt shapes.
  std::filesystem::create_directories(scratch);
  std::string wal_path = (scratch / "seed-wal.txml").string();
  std::error_code ec;
  std::filesystem::remove(wal_path, ec);

  WalOptions options;
  options.sync_mode = WalSyncMode::kNone;
  auto log = WriteAheadLog::Open(wal_path, options);
  if (!log.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n",
                 log.status().ToString().c_str());
    return false;
  }
  WalRecord put;
  put.type = WalRecordType::kPut;
  put.ts = Timestamp::FromDate(2001, 1, 26);
  put.url = "http://example.com/menu.xml";
  put.payload = "<menu><price>12.5</price></menu>";
  WalRecord del;
  del.type = WalRecordType::kDelete;
  del.ts = Timestamp::FromDate(2001, 2, 1);
  del.url = "http://example.com/menu.xml";
  WalRecord vac;
  vac.type = WalRecordType::kVacuum;
  vac.policy.drop_before = Timestamp::FromDate(2000, 1, 1);
  vac.policy.keep_every = 4;
  for (const WalRecord* record : {&put, &del, &vac}) {
    auto appended = (*log)->Append(*record);
    if (!appended.ok()) {
      std::fprintf(stderr, "wal append failed: %s\n",
                   appended.status().ToString().c_str());
      return false;
    }
  }
  log->reset();  // close before reading

  std::ifstream in(wal_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.empty()) {
    std::fprintf(stderr, "seed wal came back empty\n");
    return false;
  }

  if (!WriteSeed(dir, "log_three_records", bytes)) return false;
  // Header-only log (fresh file).
  if (!WriteSeed(dir, "log_header_only", bytes.substr(0, 5))) return false;
  // Torn tail: the last record cut in half.
  if (!WriteSeed(dir, "log_torn_tail", bytes.substr(0, bytes.size() - 7))) {
    return false;
  }
  // CRC flip in the middle record's body.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  if (!WriteSeed(dir, "log_crc_flip", corrupt)) return false;
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  return WriteSeed(dir, "log_bad_magic", bad_magic);
}

int Run(const std::filesystem::path& out_dir) {
  const char* kSubdirs[] = {"query", "wire", "wal"};
  for (const char* sub : kSubdirs) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir / sub, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", (out_dir / sub).c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  if (!WriteQuerySeeds(out_dir / "query")) return 1;
  if (!WriteWireSeeds(out_dir / "wire")) return 1;
  if (!WriteWalSeeds(out_dir / "wal",
                     std::filesystem::temp_directory_path() /
                         "txml-gen-seed-corpus")) {
    return 1;
  }
  std::printf("seed corpus written under %s\n", out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace txml

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out-dir>\n", argv[0]);
    return 2;
  }
  return txml::Run(argv[1]);
}
