// libFuzzer harness for the wire envelope decoders (first byte selects
// the decoder, the rest is the payload — see FuzzWireDecode).
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  txml::fuzz::FuzzWireDecode(data, size);
  return 0;
}
