// File-replay driver linked into the fuzz harnesses when the compiler
// has no libFuzzer (-fsanitize=fuzzer is clang-only). Each argument is a
// file (or a directory of files) fed once through LLVMFuzzerTestOneInput —
// enough to replay a corpus or reproduce a crash artifact, not to
// generate new inputs.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
    return 2;
  }
  size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (!RunFile(entry.path())) return 1;
        ++executed;
      }
    } else {
      if (!RunFile(arg)) return 1;
      ++executed;
    }
  }
  std::printf("replayed %zu input(s) without a crash\n", executed);
  return 0;
}
