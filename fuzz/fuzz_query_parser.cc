// libFuzzer harness for the Section-5 query parser. Build with
// -DTXML_FUZZ=ON under clang; other toolchains get the standalone
// file-replay driver instead (standalone_main.cc).
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  txml::fuzz::FuzzQueryParser(data, size);
  return 0;
}
