#include "fuzz/fuzz_targets.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/lang/parser.h"
#include "src/net/wire.h"
#include "src/storage/wal.h"
#include "src/util/coding.h"

namespace txml {
namespace fuzz {
namespace {

std::string_view AsView(const uint8_t* data, size_t size) {
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

/// Invariant failures abort so the fuzzer records them as crashes (the
/// sanitizer-free standalone build has no other way to flag them).
[[noreturn]] void Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz invariant violated: %s\n%s\n", what,
               detail.c_str());
  std::abort();
}

}  // namespace

void FuzzQueryParser(const uint8_t* data, size_t size) {
  auto query = ParseQuery(AsView(data, size));
  if (!query.ok()) return;
  // Accepted input must survive the printer/parser round trip: ToString
  // output re-parses, and printing that parse reproduces it.
  std::string printed = query->ToString();
  auto again = ParseQuery(printed);
  if (!again.ok()) {
    Fail("ToString() of an accepted query failed to re-parse", printed);
  }
  if (again->ToString() != printed) {
    Fail("ToString() round trip is not a fixed point", printed);
  }
}

void FuzzWireDecode(const uint8_t* data, size_t size) {
  if (size == 0) return;
  std::string_view payload = AsView(data + 1, size - 1);
  switch (data[0] % 15) {
    case 0: {
      auto request = DecodeQueryRequest(payload);
      if (!request.ok()) return;
      auto again = DecodeQueryRequest(EncodeQueryRequest(*request));
      if (!again.ok()) {
        Fail("re-encoded QueryRequest failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 1: {
      auto request = DecodePutRequest(payload);
      if (!request.ok()) return;
      auto again = DecodePutRequest(EncodePutRequest(*request));
      if (!again.ok()) {
        Fail("re-encoded PutRequest failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 2: {
      auto request = DecodeVacuumRequest(payload);
      if (!request.ok()) return;
      auto again = DecodeVacuumRequest(EncodeVacuumRequest(*request));
      if (!again.ok()) {
        Fail("re-encoded VacuumRequest failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 3: {
      auto header = DecodeResponseHeader(payload);
      if (!header.ok()) return;
      auto again = DecodeResponseHeader(EncodeResponseHeader(*header));
      if (!again.ok()) {
        Fail("re-encoded ResponseHeader failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 4: {
      auto end = DecodeResponseEnd(payload);
      if (!end.ok()) return;
      auto again = DecodeResponseEnd(EncodeResponseEnd(*end));
      if (!again.ok() || *again != *end) {
        Fail("re-encoded ResponseEnd failed to round-trip",
             std::to_string(*end));
      }
      break;
    }
    case 5: {
      auto request = DecodeReplSubscribe(payload);
      if (!request.ok()) return;
      auto again = DecodeReplSubscribe(EncodeReplSubscribe(*request));
      if (!again.ok()) {
        Fail("re-encoded ReplSubscribeRequest failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 6: {
      auto batch = DecodeReplBatch(payload);
      if (!batch.ok()) return;
      auto again = DecodeReplBatch(EncodeReplBatch(*batch));
      if (!again.ok()) {
        Fail("re-encoded ReplBatch failed to decode",
             again.status().ToString());
      } else if (again->records.size() != batch->records.size()) {
        Fail("ReplBatch round trip changed the record count",
             std::to_string(batch->records.size()));
      }
      break;
    }
    case 7: {
      auto heartbeat = DecodeReplHeartbeat(payload);
      if (!heartbeat.ok()) return;
      auto again = DecodeReplHeartbeat(EncodeReplHeartbeat(*heartbeat));
      if (!again.ok() ||
          again->leader_last_sequence != heartbeat->leader_last_sequence) {
        Fail("re-encoded ReplHeartbeat failed to round-trip",
             std::to_string(heartbeat->leader_last_sequence));
      }
      break;
    }
    case 8: {
      auto ack = DecodeReplAck(payload);
      if (!ack.ok()) return;
      auto again = DecodeReplAck(EncodeReplAck(*ack));
      if (!again.ok() || again->applied_sequence != ack->applied_sequence) {
        Fail("re-encoded ReplAck failed to round-trip",
             std::to_string(ack->applied_sequence));
      }
      break;
    }
    case 9: {
      auto request = DecodeStatsRequest(payload);
      if (!request.ok()) return;
      auto again = DecodeStatsRequest(EncodeStatsRequest(*request));
      if (!again.ok()) {
        Fail("re-encoded StatsRequest failed to decode",
             again.status().ToString());
      }
      break;
    }
    case 10: {
      auto request = DecodeWriteBatchRequest(payload);
      if (!request.ok()) return;
      auto again = DecodeWriteBatchRequest(EncodeWriteBatchRequest(*request));
      if (!again.ok()) {
        Fail("re-encoded WriteBatchRequest failed to decode",
             again.status().ToString());
      } else if (again->items.size() != request->items.size()) {
        Fail("WriteBatchRequest round trip changed the item count",
             std::to_string(request->items.size()));
      }
      break;
    }
    case 11: {
      auto request = DecodeCheckpointRequest(payload);
      if (!request.ok()) return;
      auto again = DecodeCheckpointRequest(EncodeCheckpointRequest(*request));
      if (!again.ok() || again->resume_offset != request->resume_offset ||
          again->resume_crc32c != request->resume_crc32c) {
        Fail("re-encoded CheckpointRequest failed to round-trip",
             std::to_string(request->resume_offset));
      }
      break;
    }
    case 12: {
      auto meta = DecodeCheckpointMeta(payload);
      if (!meta.ok()) return;
      auto again = DecodeCheckpointMeta(EncodeCheckpointMeta(*meta));
      if (!again.ok()) {
        Fail("re-encoded CheckpointMeta failed to decode",
             again.status().ToString());
      } else if (again->files.size() != meta->files.size() ||
                 again->total_bytes != meta->total_bytes) {
        Fail("CheckpointMeta round trip changed the file table",
             std::to_string(meta->files.size()));
      }
      break;
    }
    case 13: {
      auto chunk = DecodeCheckpointChunk(payload);
      if (!chunk.ok()) return;
      auto again = DecodeCheckpointChunk(EncodeCheckpointChunk(*chunk));
      if (!again.ok() || again->offset != chunk->offset ||
          again->crc32c != chunk->crc32c || again->data != chunk->data) {
        Fail("re-encoded CheckpointChunk failed to round-trip",
             std::to_string(chunk->offset));
      }
      break;
    }
    default: {
      // kResponseChunk carries raw payload bytes — there is no envelope
      // codec to round-trip, so exercise the frame layer itself: framing
      // arbitrary bytes must produce exactly length prefix (payload + the
      // type byte), the kResponseChunk tag, and the payload verbatim.
      std::string framed;
      AppendFrame(FrameType::kResponseChunk, payload, &framed);
      if (framed.size() != 4 + 1 + payload.size()) {
        Fail("AppendFrame(kResponseChunk) produced a wrong-size frame",
             std::to_string(framed.size()));
      }
      Decoder decoder(framed);
      auto body_length = decoder.ReadFixed32();
      if (!body_length.ok() || *body_length != 1 + payload.size()) {
        Fail("AppendFrame(kResponseChunk) wrote a wrong length prefix",
             std::to_string(payload.size()));
      }
      if (static_cast<uint8_t>(framed[4]) !=
          static_cast<uint8_t>(FrameType::kResponseChunk)) {
        Fail("AppendFrame(kResponseChunk) wrote a wrong type tag",
             std::to_string(static_cast<unsigned>(framed[4])));
      }
      if (std::string_view(framed).substr(5) != payload) {
        Fail("AppendFrame(kResponseChunk) mangled the payload",
             std::to_string(payload.size()));
      }
      break;
    }
  }
}

void FuzzWalReplay(const uint8_t* data, size_t size) {
  auto replay = WriteAheadLog::ReplayData(AsView(data, size));
  if (!replay.ok()) return;
  // A scan never reports more valid bytes than it was given, and a dropped
  // tail must account for exactly the remainder.
  if (replay->valid_bytes > size) {
    Fail("ReplayData valid_bytes exceeds input size",
         std::to_string(replay->valid_bytes));
  }
  if (replay->tail_dropped &&
      replay->bytes_dropped != size - replay->valid_bytes) {
    Fail("ReplayData dropped-byte accounting is inconsistent",
         std::to_string(replay->bytes_dropped));
  }
}

}  // namespace fuzz
}  // namespace txml
