// libFuzzer harness for WAL recovery (WriteAheadLog::ReplayData over an
// in-memory file image).
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  txml::fuzz::FuzzWalReplay(data, size);
  return 0;
}
