#ifndef TXML_FUZZ_FUZZ_TARGETS_H_
#define TXML_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace txml {
namespace fuzz {

/// The three untrusted-input decode paths, each wrapped as a
/// deterministic, crash-free-on-any-input entry point. The same functions
/// back three consumers:
///
///   - the libFuzzer harnesses (fuzz_query_parser.cc, fuzz_wire.cc,
///     fuzz_wal_replay.cc), built with -fsanitize=fuzzer under clang;
///   - the standalone replay driver (standalone_main.cc) for toolchains
///     without libFuzzer;
///   - tests/fuzz_corpus_test.cc, which replays the committed seed corpus
///     in the normal ctest run as a regression gate.
///
/// Contract: any byte sequence is a legal input; malformed input must
/// yield a typed Status error inside, never a crash, hang, or UB.

/// Section-5 query text → ParseQuery. Accepted queries are additionally
/// round-tripped through ToString + re-parse (the printer/parser
/// round-trip invariant lang_test relies on).
void FuzzQueryParser(const uint8_t* data, size_t size);

/// Wire envelope decoding. The first input byte selects one of the five
/// envelope decoders (query / put / vacuum request, response header,
/// response end); the rest is the payload. Successfully decoded requests
/// are re-encoded and re-decoded to exercise the encoders too.
void FuzzWireDecode(const uint8_t* data, size_t size);

/// WAL recovery scan over an in-memory file image
/// (WriteAheadLog::ReplayData).
void FuzzWalReplay(const uint8_t* data, size_t size);

}  // namespace fuzz
}  // namespace txml

#endif  // TXML_FUZZ_FUZZ_TARGETS_H_
