// An XML/Web data warehouse scenario (the paper's Section 3.1 second
// case): documents crawled from "the Web" at irregular times, some
// vanishing between crawls. Timestamps are crawl times, the histories are
// incomplete — exactly the setting Xyleme motivated. The warehouse is then
// queried temporally and persisted to disk.
//
//   $ ./build/examples/web_warehouse [sites] [crawl_rounds]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/util/random.h"
#include "src/workload/tdocgen.h"

using namespace txml;

int main(int argc, char** argv) {
  size_t sites = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  TemporalXmlDatabase db(DatabaseOptions{.snapshot_every = 8});
  Random rng(2001);

  // One generator per site so their vocabularies and change rates differ.
  std::vector<std::unique_ptr<TDocGen>> generators;
  std::vector<std::string> urls;
  for (size_t s = 0; s < sites; ++s) {
    TDocGenOptions options;
    options.initial_items = 10 + s % 20;
    options.mutations_per_version = 1 + s % 5;
    options.seed = 1000 + s;
    generators.push_back(std::make_unique<TDocGen>(options));
    urls.push_back("http://site" + std::to_string(s) + ".example/data.xml");
  }

  // Crawl: each round visits each live site with some probability and at a
  // jittered time — the warehouse never sees a consistent cut.
  Timestamp base = Timestamp::FromDate(2001, 6, 1);
  std::vector<bool> dead(sites, false);
  size_t crawled = 0, deleted = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t s = 0; s < sites; ++s) {
      if (dead[s]) continue;
      if (rng.NextDouble() < 0.25) continue;  // crawler missed this site
      Timestamp ts = base.AddDays(static_cast<int64_t>(round * 7))
                         .AddMinutes(static_cast<int64_t>(
                             rng.Uniform(60 * 24 * 6)));
      const VersionedDocument* doc = db.store().FindByUrl(urls[s]);
      std::unique_ptr<XmlNode> tree =
          doc == nullptr ? generators[s]->InitialDocument()
                         : generators[s]->NextVersion(*doc->current());
      auto put = db.PutDocumentTree(urls[s], std::move(tree), ts);
      if (!put.ok()) {
        // Jitter can order two crawls of one site the wrong way round;
        // a real crawler would skip the stale fetch — so do we.
        continue;
      }
      ++crawled;
      // Occasionally a site disappears from the Web.
      if (round > 2 && rng.NextDouble() < 0.03) {
        if (db.DeleteDocumentAt(urls[s], ts.AddHours(1)).ok()) {
          dead[s] = true;
          ++deleted;
        }
      }
    }
  }
  std::printf("warehouse: %zu sites, %zu crawled versions, %zu sites died\n",
              db.store().document_count(), crawled, deleted);
  size_t current_bytes = db.store().CurrentBytes();
  size_t delta_bytes = db.store().DeltaBytes();
  std::printf("storage: %zu bytes current versions, %zu bytes deltas, "
              "%zu bytes snapshots\n\n",
              current_bytes, delta_bytes, db.store().SnapshotBytes());

  // Temporal questions against the warehouse.
  std::string mid = base.AddDays(static_cast<int64_t>(rounds * 7 / 2))
                        .ToString().substr(0, 10);
  for (const std::string& query : {
           // How many items did site0 list halfway through the crawl?
           "SELECT COUNT(I) FROM doc(\"" + urls[0] + "\")[" + mid +
               "]/item I",
           // Items whose price field currently says 42.
           "SELECT I/@key FROM doc(\"" + urls[0] +
               "\")/item I WHERE I/price = 42",
           // Full price history of every item of site0 (first rows).
           "SELECT TIME(I), I/price FROM doc(\"" + urls[0] +
               "\")[EVERY]/item I",
           // Warehouse-wide: items across every crawled site at one
           // instant (collection() spans all matching URLs).
           std::string("SELECT COUNT(I) FROM collection(\"http://site*\")[") +
               mid + "]/item I",
       }) {
    std::printf("query> %s\n", query.c_str());
    auto result = db.QueryToString(query, /*pretty=*/false);
    if (!result.ok()) {
      std::printf("error: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    std::string text = *result;
    if (text.size() > 400) text = text.substr(0, 400) + "…";
    std::printf("%s\n\n", text.c_str());
  }

  // Persist and reopen — the indexes are rebuilt from the stored history.
  std::string dir =
      (std::filesystem::temp_directory_path() / "txml_warehouse").string();
  if (auto saved = db.Save(dir); !saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return EXIT_FAILURE;
  }
  auto reopened = TemporalXmlDatabase::Open(dir);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::printf("persisted to %s and reopened: %zu documents, FTI has %zu "
              "postings\n",
              dir.c_str(), (*reopened)->store().document_count(),
              (*reopened)->fti().posting_count());
  std::filesystem::remove_all(dir);
  return EXIT_SUCCESS;
}
