// The paper's running example (Figure 1 and Section 6.2), end to end:
// loads the restaurant-guide history and runs the worked queries Q1-Q3
// plus the Section 7.4 equality examples.
//
//   $ ./build/examples/restaurant_guide
#include <cstdio>
#include <cstdlib>

#include "src/core/database.h"
#include "src/query/scan.h"
#include "src/query/time_ops.h"
#include "src/workload/restaurant.h"

using namespace txml;

namespace {

void Show(TemporalXmlDatabase* db, const char* label,
          const std::string& query) {
  std::printf("--- %s\n%s\n", label, query.c_str());
  auto result = db->QueryToString(query);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n\n", result->c_str());
}

}  // namespace

int main() {
  TemporalXmlDatabase db;
  std::printf("Loading Figure 1: the restaurant list at guide.com as "
              "retrieved on 01/01, 15/01 and 31/01 2001.\n\n");
  for (const Figure1Version& version : Figure1History()) {
    auto put = db.PutDocumentAt(kGuideUrl, version.xml, version.ts);
    if (!put.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   put.status().ToString().c_str());
      return EXIT_FAILURE;
    }
  }
  std::string url(kGuideUrl);

  // Q1: all restaurants as of 26/01/2001 (TPatternScan + Reconstruct).
  Show(&db, "Q1: snapshot at 26/01/2001",
       "SELECT R FROM doc(\"" + url + "\")[26/01/2001]/restaurant R");

  // Q2: count at 26/01/2001 (TPatternScan + aggregate, no reconstruction).
  Show(&db, "Q2: number of restaurants at 26/01/2001",
       "SELECT SUM(R) FROM doc(\"" + url + "\")[26/01/2001]/restaurant R");
  std::printf("    (snapshot reconstructions during Q2: %zu — the paper's "
              "point that deltas\n     do not hurt aggregate-only "
              "queries)\n\n",
              db.last_query_stats().snapshot_reconstructions);

  // Q3: the price history of Napoli (TPatternScanAll).
  Show(&db, "Q3: price history of Napoli",
       "SELECT TIME(R), R/price FROM doc(\"" + url +
           "\")[EVERY]/guide/restaurant R WHERE R/name = \"Napoli\"");

  // Section 5: relative time.
  Show(&db, "snapshot at NOW - 10 DAYS",
       "SELECT R/name FROM doc(\"" + url + "\")[NOW - 10 DAYS]/restaurant R");

  // Section 6.1: element lifetimes.
  Show(&db, "create/delete times of all restaurants ever",
       "SELECT R/name, CREATE TIME(R), DELETE TIME(R) FROM doc(\"" + url +
           "\")[26/01/2001]/restaurant R");

  // Section 6.1: navigating versions.
  Show(&db, "current price of restaurants seen on 26/01",
       "SELECT DISTINCT R/name, CURRENT(R)/price FROM doc(\"" + url +
           "\")[26/01/2001]/restaurant R");

  // Section 7.4: which restaurants raised their price since 10/01?
  Show(&db, "price increases since 10/01/2001 (identity join)",
       "SELECT R1/name FROM doc(\"" + url + "\")[10/01/2001]/restaurant R1, "
       "doc(\"" + url + "\")[NOW]/restaurant R2 "
       "WHERE R1 == R2 AND R1/price < R2/price");

  // DIFF between two snapshots of the whole guide.
  Show(&db, "edit script between 26/01 and 31/01",
       "SELECT DIFF(G1, G2) FROM doc(\"" + url + "\")[26/01/2001]/guide G1, "
       "doc(\"" + url + "\")[31/01/2001]/guide G2 WHERE G1 == G2");

  // The same data through the operator API (what the language lowers to).
  std::printf("--- operator level: TPatternScanAll over 'restaurant'\n");
  QueryContext ctx = db.Context();
  auto pattern = Pattern(PatternNode::Make(
      PatternNode::Test::kElementName, PatternNode::Axis::kDescendantOrSelf,
      "restaurant", /*projected=*/true));
  auto runs = TPatternScanAll(ctx, pattern);
  if (runs.ok()) {
    for (const ScanMatch& match : *runs) {
      std::printf("  element %s valid %s\n",
                  match.ProjectedTeid(pattern).eid.ToString().c_str(),
                  match.validity.ToString().c_str());
    }
  }
  return EXIT_SUCCESS;
}
