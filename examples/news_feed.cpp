// Document time vs transaction time (paper Section 3.1): a news warehouse
// where every article carries its *publication* timestamp (à la
// XMLNews-Meta) while the warehouse records *crawl* times. The two
// timelines disagree — articles are crawled late, out of order, and get
// re-crawled after corrections — and the system answers questions on both.
//
//   $ ./build/examples/news_feed
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/database.h"

using namespace txml;

int main() {
  TemporalXmlDatabase db(
      DatabaseOptions{.document_time_path = "//published"});

  struct Crawl {
    const char* url;
    const char* crawl_date;  // transaction time (when the crawler saw it)
    const char* xml;         // carries its own publication date
  };
  const Crawl kCrawls[] = {
      {"http://wire/storm", "05/01/2001",
       "<article><published>2001-01-03</published><title>Storm hits "
       "coast</title><body>Heavy winds reported.</body></article>"},
      // Published earlier, crawled later — the crawler found it late.
      {"http://wire/budget", "06/01/2001",
       "<article><published>2001-01-02</published><title>Budget "
       "passes</title><body>Vote was close.</body></article>"},
      {"http://wire/storm", "09/01/2001",
       "<article><published>2001-01-03</published><title>Storm hits "
       "coast</title><body>Heavy winds reported. Two bridges "
       "closed.</body></article>"},  // correction: body updated
      {"http://wire/flood", "12/01/2001",
       "<article><published>2001-01-11</published><title>Flood "
       "recedes</title><body>Cleanup begins.</body></article>"},
  };
  for (const Crawl& crawl : kCrawls) {
    auto put = db.PutDocumentAt(crawl.url, crawl.xml,
                                *Timestamp::ParseDate(crawl.crawl_date));
    if (!put.ok()) {
      std::fprintf(stderr, "put failed: %s\n",
                   put.status().ToString().c_str());
      return EXIT_FAILURE;
    }
  }

  // Question 1 (document time): what was *published* in the first week of
  // January, regardless of when we crawled it?
  std::printf("=== published 01/01 - 08/01 (document time) ===\n");
  const DocumentTimeIndex* doctime = db.document_time_index();
  for (const DocumentTimeIndex::Entry& entry :
       doctime->Between(Timestamp::FromDate(2001, 1, 1),
                        Timestamp::FromDate(2001, 1, 8))) {
    const VersionedDocument* doc = db.store().FindById(entry.doc_id);
    std::printf("  %s v%u published %s (crawled %s)\n", doc->url().c_str(),
                entry.version, entry.doc_time.ToString().c_str(),
                doc->delta_index().TimestampOf(entry.version)
                    .ToString().c_str());
  }

  // Question 2 (transaction time): what did the warehouse believe about
  // the storm story on 07/01 — before the correction arrived?
  std::printf("\n=== the storm story as the warehouse had it on 07/01 ===\n");
  auto before = db.QueryToString(
      "SELECT A/body FROM doc(\"http://wire/storm\")[07/01/2001]/article A");
  if (before.ok()) std::printf("%s\n", before->c_str());

  // Question 3 (both timelines): corrections — stories whose content
  // changed after publication day.
  std::printf("\n=== corrections (crawled text changed after "
              "publication) ===\n");
  auto corrections = db.QueryToString(
      "SELECT TIME(A), A/title FROM "
      "collection(\"http://wire/*\")[EVERY]/article A "
      "WHERE TIME(A) > 04/01/2001");
  if (corrections.ok()) std::printf("%s\n", corrections->c_str());

  // Question 4: the full edit trail of the corrected story.
  std::printf("\n=== what the correction changed ===\n");
  auto diff = db.QueryToString(
      "SELECT DIFF(PREVIOUS(A), A) FROM "
      "doc(\"http://wire/storm\")[NOW]/article A");
  if (diff.ok()) std::printf("%s\n", diff->c_str());
  return EXIT_SUCCESS;
}
