// Quickstart: store a few versions of an XML document and ask temporal
// questions about them.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "src/core/database.h"

using txml::DatabaseOptions;
using txml::TemporalXmlDatabase;
using txml::Timestamp;

namespace {

void Run(TemporalXmlDatabase* db, const char* query) {
  std::printf("query> %s\n", query);
  auto result = db->QueryToString(query);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n\n", result->c_str());
}

}  // namespace

int main() {
  // A database with periodic snapshots every 4 versions (bounds how many
  // deltas a reconstruction ever applies).
  TemporalXmlDatabase db(DatabaseOptions{.snapshot_every = 4});

  // Three versions of a tiny product catalogue; explicit transaction
  // times (PutDocument without a timestamp uses the database clock).
  struct Version {
    const char* date;
    const char* xml;
  };
  const Version kVersions[] = {
      {"01/03/2001",
       "<catalog><product><name>Widget</name><price>10</price></product>"
       "</catalog>"},
      {"10/03/2001",
       "<catalog><product><name>Widget</name><price>12</price></product>"
       "<product><name>Gadget</name><price>30</price></product></catalog>"},
      {"20/03/2001",
       "<catalog><product><name>Widget</name><price>12</price></product>"
       "</catalog>"},
  };
  for (const Version& version : kVersions) {
    auto ts = Timestamp::ParseDate(version.date);
    auto put = db.PutDocumentAt("http://shop.example/catalog.xml",
                                version.xml, *ts);
    if (!put.ok()) {
      std::fprintf(stderr, "put failed: %s\n",
                   put.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("stored version %u at %s\n", put->version, version.date);
  }
  std::printf("\n");

  // Snapshot query: the catalogue as of 15/03/2001.
  Run(&db,
      "SELECT P FROM doc(\"http://shop.example/catalog.xml\")"
      "[15/03/2001]/product P");

  // History query: every price the Widget ever had, with timestamps.
  Run(&db,
      "SELECT TIME(P), P/price "
      "FROM doc(\"http://shop.example/catalog.xml\")[EVERY]/product P "
      "WHERE P/name = \"Widget\"");

  // When did the Gadget appear and disappear?
  Run(&db,
      "SELECT CREATE TIME(P), DELETE TIME(P) "
      "FROM doc(\"http://shop.example/catalog.xml\")[15/03/2001]/product P "
      "WHERE P/name = \"Gadget\"");

  // What changed between the 15/03 state and now?
  Run(&db,
      "SELECT DIFF(C1, C2) "
      "FROM doc(\"http://shop.example/catalog.xml\")[15/03/2001]/catalog C1, "
      "doc(\"http://shop.example/catalog.xml\")[NOW]/catalog C2 "
      "WHERE C1 == C2");

  return EXIT_SUCCESS;
}
