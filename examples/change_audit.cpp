// Change auditing: track *how* a document evolved, not just what it said —
// the change-centric queries (DIFF, PREVIOUS, CREATE/DELETE TIME,
// DocHistory) that motivate temporal XML databases over plain archives.
//
//   $ ./build/examples/change_audit
#include <cstdio>
#include <cstdlib>

#include "src/core/database.h"
#include "src/query/diff_op.h"
#include "src/query/history_ops.h"
#include "src/xml/serializer.h"

using namespace txml;

int main() {
  TemporalXmlDatabase db;
  const std::string url = "http://intranet.example/policy.xml";

  // A policy document edited over several months.
  struct Revision {
    const char* date;
    const char* xml;
  };
  const Revision kRevisions[] = {
      {"05/01/2001",
       "<policy owner=\"alice\"><rule id=\"r1\">All visitors sign in"
       "</rule><rule id=\"r2\">Badges required</rule></policy>"},
      {"17/02/2001",
       "<policy owner=\"alice\"><rule id=\"r1\">All visitors sign in"
       "</rule><rule id=\"r2\">Badges required at all times</rule>"
       "<rule id=\"r3\">Escorts for lab areas</rule></policy>"},
      {"03/04/2001",
       "<policy owner=\"bob\"><rule id=\"r2\">Badges required at all times"
       "</rule><rule id=\"r3\">Escorts for lab areas</rule></policy>"},
  };
  for (const Revision& revision : kRevisions) {
    auto put = db.PutDocumentAt(url, revision.xml,
                                *Timestamp::ParseDate(revision.date));
    if (!put.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   put.status().ToString().c_str());
      return EXIT_FAILURE;
    }
  }

  // 1. The full revision history, most recent first (DocHistory).
  std::printf("=== revision history ===\n");
  auto history = db.History(url, Timestamp::NegInfinity(),
                            Timestamp::Infinity());
  if (!history.ok()) return EXIT_FAILURE;
  for (const MaterializedVersion& version : *history) {
    std::printf("%s valid %s (%zu nodes)\n",
                version.teid.ToString().c_str(),
                version.validity.ToString().c_str(),
                version.tree->CountNodes());
  }

  // 2. Edit scripts between consecutive revisions (DIFF(PREVIOUS(P), P)).
  std::printf("\n=== what changed in each revision ===\n");
  auto diffs = db.QueryToString(
      "SELECT TIME(P), DIFF(PREVIOUS(P), P) FROM doc(\"" + url +
      "\")[EVERY]/policy P");
  if (diffs.ok()) std::printf("%s\n", diffs->c_str());

  // 3. Lifetime of each rule: when was it added, when removed?
  std::printf("\n=== rule lifetimes ===\n");
  auto lifetimes = db.QueryToString(
      "SELECT R/@id, CREATE TIME(R), DELETE TIME(R) FROM doc(\"" + url +
      "\")[17/02/2001]/rule R");
  if (lifetimes.ok()) std::printf("%s\n", lifetimes->c_str());

  // 4. Who owned the policy when rule r1 was removed? Combine change and
  // snapshot queries: find r1's delete time, then snapshot just before.
  std::printf("\n=== forensic: state right before r1 vanished ===\n");
  auto snapshot = db.QueryToString(
      "SELECT P FROM doc(\"" + url + "\")[03/04/2001 - 1 DAYS]/policy P");
  if (snapshot.ok()) std::printf("%s\n", snapshot->c_str());

  // 5. Operator-level audit: raw edit script between first and last
  // revision, as a standalone XML document (query closure).
  std::printf("\n=== cumulative edit script v1 -> v3 ===\n");
  QueryContext ctx = db.Context();
  const VersionedDocument* doc = db.store().FindByUrl(url);
  Eid root_eid{doc->doc_id(), doc->current()->xid()};
  auto delta = DiffOp(ctx,
                      Teid{root_eid, *Timestamp::ParseDate("05/01/2001")},
                      Teid{root_eid, *Timestamp::ParseDate("03/04/2001")});
  if (delta.ok()) {
    SerializeOptions pretty;
    pretty.pretty = true;
    std::printf("%s\n", SerializeXml(*delta->root(), pretty).c_str());
  }
  return EXIT_SUCCESS;
}
