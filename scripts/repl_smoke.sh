#!/usr/bin/env bash
# End-to-end replication smoke (DESIGN.md §11): boots a durable leader
# and two read-only followers (--replica-of) on ephemeral ports, commits
# a history through txml_client, and asserts
#
#   * read-your-writes: each follower answers a query carrying the last
#     put's sequence token (--min-sequence) — the read either waits for
#     the record or fails, so a passing query proves the follower holds
#     the write;
#   * convergence: both followers return byte-identical [EVERY] results
#     to the leader's;
#   * write fencing: a put against a follower is rejected and the error
#     names the leader's address;
#   * observability: the leader's stats document lists both followers.
#
# Usage: scripts/repl_smoke.sh [build-dir]   (default: build)
# The build dir must already contain txml_server/txml_client — check.sh
# runs this against the TSan binaries after the TSan ctest stage.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVER="$BUILD/src/net/txml_server"
CLIENT="$BUILD/src/net/txml_client"
for bin in "$SERVER" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "repl_smoke: missing binary $bin (build the '$BUILD' tree first)" >&2
    exit 2
  fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/txml-repl-smoke.XXXXXX")
PIDS=()
cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

die() {
  echo "repl_smoke: FAIL: $*" >&2
  local log
  for log in "$WORK"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# start_node <name> <args...>: boots txml_server in the background and
# leaves the ephemeral port parsed from its startup banner in NODE_PORT.
# (Deliberately NOT invoked via $(...): a command substitution would
# keep reading until the backgrounded server closes the inherited
# stdout, i.e. forever, and PIDS+= would mutate a subshell copy.)
start_node() {
  local name="$1"; shift
  local log="$WORK/$name.log"
  "$SERVER" --port=0 --data-dir="$WORK/$name" "$@" >/dev/null 2>"$log" &
  PIDS+=($!)
  local i
  for i in $(seq 1 100); do
    NODE_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
                "$log" | head -1)
    [[ -n "$NODE_PORT" ]] && return 0
    sleep 0.1
  done
  die "$name never printed its listening banner"
}

start_node leader;                                  LEADER_PORT=$NODE_PORT
start_node f1 --replica-of="127.0.0.1:$LEADER_PORT"; F1_PORT=$NODE_PORT
start_node f2 --replica-of="127.0.0.1:$LEADER_PORT"; F2_PORT=$NODE_PORT
echo "repl_smoke: leader :$LEADER_PORT followers :$F1_PORT :$F2_PORT" >&2

# Commit a 20-version history while the followers tail the WAL, keeping
# the sequence token the last put printed (--stats emits "sequence=N").
LAST_SEQ=""
for day in $(seq 1 20); do
  printf -v date '%02d/01/2001' "$day"
  xml="<guide><item><name>n$day</name><price>$((100 + day))</price></item></guide>"
  put_err=$("$CLIENT" --port="$LEADER_PORT" --stats \
            put u "$xml" "$date" 2>&1 >/dev/null) \
    || die "put day $day failed: $put_err"
  LAST_SEQ=$(grep -o 'sequence=[0-9]*' <<<"$put_err" | head -1 | cut -d= -f2)
done
[[ -n "$LAST_SEQ" && "$LAST_SEQ" -ge 20 ]] \
  || die "put did not report a sequence token (got '$LAST_SEQ')"
echo "repl_smoke: committed 20 versions, last sequence $LAST_SEQ" >&2

QUERY='SELECT TIME(R), R/name, R/price FROM doc("u")[EVERY]/guide/item R'
LEADER_ANSWER=$("$CLIENT" --port="$LEADER_PORT" query "$QUERY") \
  || die "leader query failed"

# Read-your-writes + convergence on each follower: --min-sequence makes
# the follower wait for the token (or answer UNAVAILABLE if it lags out
# of the bounded wait — a failure here), then the payloads must match
# the leader's byte for byte.
for port in "$F1_PORT" "$F2_PORT"; do
  answer=$("$CLIENT" --port="$port" --min-sequence="$LAST_SEQ" \
           query "$QUERY") \
    || die "read-your-writes query on follower :$port failed"
  [[ "$answer" == "$LEADER_ANSWER" ]] \
    || die "follower :$port diverged from the leader on [EVERY]"
done
echo "repl_smoke: both followers converged (read-your-writes at" \
     "sequence $LAST_SEQ)" >&2

# Write fencing: follower puts must be rejected with the leader address.
if reject=$("$CLIENT" --port="$F1_PORT" put u "<guide/>" 2>&1); then
  die "follower :$F1_PORT accepted a write"
fi
grep -q "$LEADER_PORT" <<<"$reject" \
  || die "follower rejection does not name the leader: $reject"

# Observability: the leader's stats document lists both followers.
stats=$("$CLIENT" --port="$LEADER_PORT" stats) || die "leader stats failed"
grep -q '<followers>' <<<"$stats" \
  || die "leader stats has no <followers> section: $stats"
follower_rows=$(grep -o '<follower ' <<<"$stats" | wc -l)
[[ "$follower_rows" -eq 2 ]] \
  || die "leader stats lists $follower_rows followers, want 2: $stats"

echo "repl_smoke: OK" >&2
