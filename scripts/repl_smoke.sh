#!/usr/bin/env bash
# End-to-end replication smoke (DESIGN.md §11): boots a durable leader
# and two read-only followers (--replica-of) on ephemeral ports, commits
# a history through txml_client, and asserts
#
#   * read-your-writes: each follower answers a query carrying the last
#     put's sequence token (--min-sequence) — the read either waits for
#     the record or fails, so a passing query proves the follower holds
#     the write;
#   * convergence: both followers return byte-identical [EVERY] results
#     to the leader's;
#   * write fencing: a put against a follower is rejected and the error
#     names the leader's address;
#   * observability: the leader's stats document lists both followers;
#   * self-healing re-seed (DESIGN.md §14): a follower killed and left
#     behind until the leader's tail buffer evicts its cursor AND a
#     vacuum-forced checkpoint truncates the on-disk log re-seeds itself
#     automatically from a streamed checkpoint on restart — no operator
#     file copying — and converges byte-identically afterwards.
#
# Usage: scripts/repl_smoke.sh [build-dir]   (default: build)
# The build dir must already contain txml_server/txml_client — check.sh
# runs this against the TSan binaries after the TSan ctest stage.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVER="$BUILD/src/net/txml_server"
CLIENT="$BUILD/src/net/txml_client"
for bin in "$SERVER" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "repl_smoke: missing binary $bin (build the '$BUILD' tree first)" >&2
    exit 2
  fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/txml-repl-smoke.XXXXXX")
PIDS=()
cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

die() {
  echo "repl_smoke: FAIL: $*" >&2
  local log
  for log in "$WORK"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# start_node <name> <args...>: boots txml_server in the background and
# leaves the ephemeral port parsed from its startup banner in NODE_PORT.
# (Deliberately NOT invoked via $(...): a command substitution would
# keep reading until the backgrounded server closes the inherited
# stdout, i.e. forever, and PIDS+= would mutate a subshell copy.)
start_node() {
  local name="$1"; shift
  local log="$WORK/$name.log"
  "$SERVER" --port=0 --data-dir="$WORK/$name" "$@" >/dev/null 2>"$log" &
  PIDS+=($!)
  local i
  for i in $(seq 1 100); do
    NODE_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
                "$log" | head -1)
    [[ -n "$NODE_PORT" ]] && return 0
    sleep 0.1
  done
  die "$name never printed its listening banner"
}

start_node leader;                                  LEADER_PORT=$NODE_PORT
start_node f1 --replica-of="127.0.0.1:$LEADER_PORT"; F1_PORT=$NODE_PORT
start_node f2 --replica-of="127.0.0.1:$LEADER_PORT"; F2_PORT=$NODE_PORT
F2_PID=${PIDS[-1]}
echo "repl_smoke: leader :$LEADER_PORT followers :$F1_PORT :$F2_PORT" >&2

# Commit a 20-version history while the followers tail the WAL, keeping
# the sequence token the last put printed (--stats emits "sequence=N").
LAST_SEQ=""
for day in $(seq 1 20); do
  printf -v date '%02d/01/2001' "$day"
  xml="<guide><item><name>n$day</name><price>$((100 + day))</price></item></guide>"
  put_err=$("$CLIENT" --port="$LEADER_PORT" --stats \
            put u "$xml" "$date" 2>&1 >/dev/null) \
    || die "put day $day failed: $put_err"
  LAST_SEQ=$(grep -o 'sequence=[0-9]*' <<<"$put_err" | head -1 | cut -d= -f2)
done
[[ -n "$LAST_SEQ" && "$LAST_SEQ" -ge 20 ]] \
  || die "put did not report a sequence token (got '$LAST_SEQ')"
echo "repl_smoke: committed 20 versions, last sequence $LAST_SEQ" >&2

QUERY='SELECT TIME(R), R/name, R/price FROM doc("u")[EVERY]/guide/item R'
LEADER_ANSWER=$("$CLIENT" --port="$LEADER_PORT" query "$QUERY") \
  || die "leader query failed"

# Read-your-writes + convergence on each follower: --min-sequence makes
# the follower wait for the token (or answer UNAVAILABLE if it lags out
# of the bounded wait — a failure here), then the payloads must match
# the leader's byte for byte.
for port in "$F1_PORT" "$F2_PORT"; do
  answer=$("$CLIENT" --port="$port" --min-sequence="$LAST_SEQ" \
           query "$QUERY") \
    || die "read-your-writes query on follower :$port failed"
  [[ "$answer" == "$LEADER_ANSWER" ]] \
    || die "follower :$port diverged from the leader on [EVERY]"
done
echo "repl_smoke: both followers converged (read-your-writes at" \
     "sequence $LAST_SEQ)" >&2

# Write fencing: follower puts must be rejected with the leader address.
if reject=$("$CLIENT" --port="$F1_PORT" put u "<guide/>" 2>&1); then
  die "follower :$F1_PORT accepted a write"
fi
grep -q "$LEADER_PORT" <<<"$reject" \
  || die "follower rejection does not name the leader: $reject"

# Observability: the leader's stats document lists both followers.
stats=$("$CLIENT" --port="$LEADER_PORT" stats) || die "leader stats failed"
grep -q '<followers>' <<<"$stats" \
  || die "leader stats has no <followers> section: $stats"
follower_rows=$(grep -o '<follower ' <<<"$stats" | wc -l)
[[ "$follower_rows" -eq 2 ]] \
  || die "leader stats lists $follower_rows followers, want 2: $stats"

# --- Self-healing re-seed (DESIGN.md §14) ---
# Kill f2, then push its replication cursor below the leader's floor:
# ~4.5 MiB of new versions evicts the cursor from the in-memory WAL tail
# (4 MiB budget), and a vacuum forces a checkpoint that truncates the
# on-disk log past it. A restarted f2 must then re-seed automatically
# from the streamed checkpoint instead of parking fatal.
kill "$F2_PID" 2>/dev/null || die "could not kill follower f2"
wait "$F2_PID" 2>/dev/null || true
echo "repl_smoke: killed follower f2, advancing the leader past its" \
     "cursor" >&2

# 96 KiB per version (argv strings cap at 128 KiB on Linux), ~4.7 MiB
# total — past the tail buffer's 4 MiB eviction budget.
PAD=$(head -c 98304 /dev/zero | tr '\0' 'x')
for day in $(seq 1 50); do
  printf -v date '%02d/0%d/2001' "$(( (day - 1) % 25 + 1 ))" \
         "$(( (day - 1) / 25 + 3 ))"
  xml="<guide><item><name>big$day</name><blob>$PAD</blob></item></guide>"
  put_err=$("$CLIENT" --port="$LEADER_PORT" --stats \
            put u "$xml" "$date" 2>&1 >/dev/null) \
    || die "bulk put $day failed: $put_err"
  LAST_SEQ=$(grep -o 'sequence=[0-9]*' <<<"$put_err" | head -1 | cut -d= -f2)
done
"$CLIENT" --port="$LEADER_PORT" vacuum --drop-before=01/01/2000 >/dev/null \
  || die "vacuum (forced checkpoint) failed"

stats=$("$CLIENT" --port="$LEADER_PORT" stats) || die "leader stats failed"
grep -Eq 'last-checkpoint-sequence="[1-9]' <<<"$stats" \
  || die "vacuum did not force a leader checkpoint: $stats"

# Restart f2 from its ORIGINAL data dir (stale cursor) and require
# convergence: the --min-sequence read retries while the re-seed streams.
start_node f2-restarted --data-dir="$WORK/f2" \
           --replica-of="127.0.0.1:$LEADER_PORT"
F2_PORT=$NODE_PORT
LEADER_ANSWER=$("$CLIENT" --port="$LEADER_PORT" query "$QUERY") \
  || die "leader query failed after bulk history"
answer=""
for i in $(seq 1 50); do
  if answer=$("$CLIENT" --port="$F2_PORT" --min-sequence="$LAST_SEQ" \
              query "$QUERY" 2>/dev/null); then
    break
  fi
  answer=""
  sleep 0.2
done
[[ -n "$answer" ]] \
  || die "restarted follower :$F2_PORT never converged after re-seed"
[[ "$answer" == "$LEADER_ANSWER" ]] \
  || die "restarted follower :$F2_PORT diverged from the leader"

# The follower must have converged via a checkpoint re-seed, not a WAL
# catch-up: its stats document counts the install, the leader's counts
# the serve.
f2_stats=$("$CLIENT" --port="$F2_PORT" stats) \
  || die "restarted follower stats failed"
grep -Eq 'reseeds="[1-9]' <<<"$f2_stats" \
  || die "restarted follower reports no re-seed: $f2_stats"
stats=$("$CLIENT" --port="$LEADER_PORT" stats) || die "leader stats failed"
grep -Eq 'checkpoints-served="[1-9]' <<<"$stats" \
  || die "leader served no checkpoint transfer: $stats"
echo "repl_smoke: follower re-seeded automatically and converged" >&2

echo "repl_smoke: OK" >&2
