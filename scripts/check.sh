#!/usr/bin/env bash
# Builds and tests the three configurations that gate a change:
#
#   1. Release (RelWithDebInfo, the tier-1 configuration) — full ctest;
#   2. ThreadSanitizer (-DTXML_SANITIZE=thread)           — concurrency
#      tests (service layer, network front end, vacuum-vs-readers
#      stress). Pass --tsan-all to run the whole suite under TSan
#      instead (slow: TSan costs ~5-15x).
#   3. Address+UB sanitizers (-DTXML_SANITIZE=address)    — the history
#      rewriting suites (vacuum splices delta chains in place; ASan/UBSan
#      catch lifetime and aliasing mistakes TSan cannot) plus the
#      durability suites (WAL torn-tail matrix, crash-recovery failpoint
#      sweep), with -DTXML_FAILPOINTS=ON pinned explicitly;
#   4. -DTXML_FAILPOINTS=OFF (build only)                 — proves the
#      zero-cost no-failpoint configuration still compiles -Werror-clean.
#
# Usage: scripts/check.sh [--tsan-all] [--asan-all] [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

# Concurrency suites (tests/service_test.cc, tests/net_test.cc) plus the
# vacuum battery (tests/vacuum_test.cc — ServiceStressTest covers the
# vacuum-racing-readers case). Matching is against gtest case names, not
# binary names; --no-tests=error guards filter rot.
TSAN_FILTER="-R Service|ThreadPool|StoreObserver|Net|Wire|Vacuum|ClientRetry"
# History-rewriting suites for the ASan/UBSan pass: the storage layer,
# the vacuum oracle battery, persistence round trips, and the durability
# suites (WAL byte surgery + the failpoint crash-recovery sweep).
ASAN_FILTER="-R Vacuum|Retention|MergeEditScripts|Storage|Persist|Service|Wal|Durab|CrashRecovery|FailPoint"
JOBS=$(nproc)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan-all) TSAN_FILTER=""; shift ;;
    --asan-all) ASAN_FILTER=""; shift ;;
    -j) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run() { echo "+ $*" >&2; "$@"; }

echo "=== Release configuration (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== ThreadSanitizer configuration (build-tsan/) ==="
run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_SANITIZE=thread
run cmake --build build-tsan -j "$JOBS"
# shellcheck disable=SC2086  # intentional word-splitting of the filter
run ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -j "$JOBS" $TSAN_FILTER

echo "=== Address+UB sanitizer configuration (build-asan/) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTXML_SANITIZE=address -DTXML_FAILPOINTS=ON
run cmake --build build-asan -j "$JOBS"
# shellcheck disable=SC2086  # intentional word-splitting of the filter
run ctest --test-dir build-asan --output-on-failure --no-tests=error \
    -j "$JOBS" $ASAN_FILTER

echo "=== No-failpoint configuration (build-nofp/, compile only) ==="
run cmake -B build-nofp -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_FAILPOINTS=OFF
run cmake --build build-nofp -j "$JOBS"

echo "=== All checks passed ==="
