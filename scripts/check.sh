#!/usr/bin/env bash
# Builds and tests the two configurations that gate a change:
#
#   1. Release (RelWithDebInfo, the tier-1 configuration) — full ctest;
#   2. ThreadSanitizer (-DTXML_SANITIZE=thread)           — concurrency
#      tests (service layer + network front end). Pass --tsan-all to run
#      the whole suite under TSan instead (slow: TSan costs ~5-15x).
#
# Usage: scripts/check.sh [--tsan-all] [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

# Concurrency suites (tests/service_test.cc, tests/net_test.cc). Matching
# is against gtest case names, not binary names; --no-tests=error guards
# filter rot.
TSAN_FILTER="-R Service|ThreadPool|StoreObserver|Net|Wire"
JOBS=$(nproc)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan-all) TSAN_FILTER=""; shift ;;
    -j) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run() { echo "+ $*" >&2; "$@"; }

echo "=== Release configuration (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== ThreadSanitizer configuration (build-tsan/) ==="
run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_SANITIZE=thread
run cmake --build build-tsan -j "$JOBS"
# shellcheck disable=SC2086  # intentional word-splitting of the filter
run ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -j "$JOBS" $TSAN_FILTER

echo "=== All checks passed ==="
