#!/usr/bin/env bash
# Builds and tests the configurations that gate a change:
#
#   1. Release (RelWithDebInfo, the tier-1 configuration) — full ctest
#      (which includes the fuzz-corpus replay regression test);
#   2. ThreadSanitizer (-DTXML_SANITIZE=thread)           — concurrency
#      tests (service layer, network front end, replication,
#      vacuum-vs-readers stress), then the leader+2-follower replication
#      smoke (scripts/repl_smoke.sh) over the TSan binaries. Pass
#      --tsan-all to run the whole suite under TSan instead (slow: TSan
#      costs ~5-15x).
#   3. Address+UB sanitizers (-DTXML_SANITIZE=address)    — the history
#      rewriting suites (vacuum splices delta chains in place; ASan/UBSan
#      catch lifetime and aliasing mistakes TSan cannot) plus the
#      durability suites (WAL torn-tail matrix, crash-recovery failpoint
#      sweep), with -DTXML_FAILPOINTS=ON pinned explicitly;
#   4. Static analysis (-DTXML_ANALYZE=ON, build-analyze/) — clang's
#      thread-safety capability analysis as -Werror plus the clang-tidy
#      check set pinned in .clang-tidy, and a negative compile-test
#      (tests/analyze_negative.cc must be REJECTED — proof the analyzer
#      is live, since the annotations are no-ops under GCC). Skipped
#      with a warning when clang/clang-tidy are not installed.
#   5. Fuzz smoke (-DTXML_FUZZ=ON, build-fuzz/) — each libFuzzer harness
#      runs ~10 s from its seed corpus. Requires clang (libFuzzer);
#      skipped with a warning otherwise (the corpus still replays in
#      stage 1 via fuzz_corpus_test).
#   6. -DTXML_FAILPOINTS=OFF (build-nofp/, build only)    — proves the
#      zero-cost no-failpoint configuration still compiles -Werror-clean.
#   7. Lint + lock rank (DESIGN.md §16) — tools/txml_lint.py over the
#      tree plus its self-test (each rule must reject a seeded
#      violation), the lock-rank death tests in a Debug build with the
#      checker pinned ON (build-rank/), and a -DTXML_LOCK_RANK=OFF
#      build-only configuration (build-norank/) proving the checker
#      compiles away -Werror-clean, exactly like stage 6 does for
#      failpoints.
#
# Usage: scripts/check.sh [--tsan-all] [--asan-all] [--fuzz-secs N] [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

# Concurrency suites (tests/service_test.cc, tests/net_test.cc) plus the
# vacuum battery (tests/vacuum_test.cc — ServiceStressTest covers the
# vacuum-racing-readers case), the multi-writer group-commit smoke
# (ServiceStressTest's concurrent-writer cases race the sharded commit
# path; WalGroupCommitTest races committers against the log-writer
# thread), and the FTI-fold races (CompactionStressTest: readers vs the
# post-commit fold, folds vs vacuums). Matching is against gtest case
# names, not binary names; --no-tests=error guards filter rot.
TSAN_FILTER="-R Service|ThreadPool|StoreObserver|Net|Wire|Vacuum|ClientRetry|Repl|WalGroupCommit|Compaction"
# History-rewriting suites for the ASan/UBSan pass: the storage layer,
# the vacuum oracle battery, persistence round trips, and the durability
# suites (WAL byte surgery + the failpoint crash-recovery sweep; "Wal"
# also picks up the WalGroupCommitTest multi-writer smoke, and "Service"
# the concurrent-writer stress cases), plus the differential-FTI fold
# suites ("Compaction": posting-vector splices and open-ref re-anchoring
# are exactly the pointer surgery ASan is for).
ASAN_FILTER="-R Vacuum|Retention|MergeEditScripts|Storage|Persist|Service|Wal|Durab|CrashRecovery|FailPoint|Repl|Compaction"
JOBS=$(nproc)
FUZZ_SECS=10
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan-all) TSAN_FILTER=""; shift ;;
    --asan-all) ASAN_FILTER=""; shift ;;
    --fuzz-secs) FUZZ_SECS="$2"; shift 2 ;;
    -j) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run() { echo "+ $*" >&2; "$@"; }

echo "=== Release configuration (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== ThreadSanitizer configuration (build-tsan/) ==="
run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_SANITIZE=thread
run cmake --build build-tsan -j "$JOBS"
# shellcheck disable=SC2086  # intentional word-splitting of the filter
run ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -j "$JOBS" $TSAN_FILTER
# End-to-end replication smoke over the TSan binaries: leader + two
# followers, convergence and read-your-writes asserted through the CLI
# (the shipper/applier threads run under the race detector).
run scripts/repl_smoke.sh build-tsan

echo "=== Address+UB sanitizer configuration (build-asan/) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTXML_SANITIZE=address -DTXML_FAILPOINTS=ON
run cmake --build build-asan -j "$JOBS"
# shellcheck disable=SC2086  # intentional word-splitting of the filter
run ctest --test-dir build-asan --output-on-failure --no-tests=error \
    -j "$JOBS" $ASAN_FILTER

echo "=== Static analysis configuration (build-analyze/) ==="
if command -v clang++ >/dev/null 2>&1; then
  ANALYZE_ARGS=(-DCMAKE_CXX_COMPILER=clang++ -DTXML_ANALYZE=ON)
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "WARNING: clang-tidy not found; analyze stage runs" \
         "thread-safety analysis only" >&2
  fi
  run cmake -B build-analyze -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      "${ANALYZE_ARGS[@]}"
  run cmake --build build-analyze -j "$JOBS"
  # Negative check: the deliberately lock-misusing file must be REJECTED.
  # If it compiles clean, the analyzer is not actually running and the
  # whole stage is vacuous — fail loudly.
  echo "+ clang++ -fsyntax-only tests/analyze_negative.cc (must FAIL)" >&2
  if clang++ -fsyntax-only -std=c++20 -I. -Wthread-safety \
      -Werror=thread-safety tests/analyze_negative.cc 2>/dev/null; then
    echo "ERROR: tests/analyze_negative.cc compiled cleanly —" \
         "the thread-safety gate is not analyzing anything" >&2
    exit 1
  fi
  echo "analyze negative check OK (analyzer rejected the bad file)" >&2
else
  echo "WARNING: clang++ not found; SKIPPING the static-analysis stage." \
       "The thread-safety annotations are no-ops under GCC, so this" \
       "run proves nothing about lock discipline." >&2
fi

echo "=== Fuzz smoke (build-fuzz/) ==="
# libFuzzer is clang-only; probe for it rather than trusting the version.
if command -v clang++ >/dev/null 2>&1 \
    && echo 'extern "C" int LLVMFuzzerTestOneInput(const unsigned char*, unsigned long){return 0;}' \
       | clang++ -x c++ -fsanitize=fuzzer - -o /tmp/txml-fuzz-probe.$$ 2>/dev/null; then
  rm -f "/tmp/txml-fuzz-probe.$$"
  run cmake -B build-fuzz -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER=clang++ -DTXML_FUZZ=ON
  run cmake --build build-fuzz -j "$JOBS"
  for target in fuzz_query_parser fuzz_wire fuzz_wal_replay; do
    corpus="fuzz/corpus/${target#fuzz_}"
    corpus="${corpus%_parser}"       # fuzz_query_parser -> fuzz/corpus/query
    corpus="${corpus/wal_replay/wal}"
    # First (writable) corpus dir is scratch so new inputs and crash
    # artifacts land under build-fuzz/, not in the committed seed corpus.
    mkdir -p "build-fuzz/corpus-$target"
    run "build-fuzz/fuzz/$target" -max_total_time="$FUZZ_SECS" \
        -print_final_stats=1 -artifact_prefix="build-fuzz/" \
        "build-fuzz/corpus-$target" "$corpus"
  done
else
  rm -f "/tmp/txml-fuzz-probe.$$"
  echo "WARNING: no clang/libFuzzer; SKIPPING the fuzz smoke." \
       "Corpus replay still ran in stage 1 (fuzz_corpus_test)." >&2
fi

echo "=== No-failpoint configuration (build-nofp/, compile only) ==="
run cmake -B build-nofp -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_FAILPOINTS=OFF
run cmake --build build-nofp -j "$JOBS"

echo "=== Lint + lock-rank configuration (build-rank/, build-norank/) ==="
# The textual project lint and its negative self-test (the lint analogue
# of the analyze_negative compile check: every rule must still reject a
# seeded violation).
run python3 tools/txml_lint.py --root .
run python3 tools/txml_lint.py --self-test
# Debug build with the rank checker pinned ON: the death tests prove the
# checker aborts on inversions, and the fold/vacuum/checkpoint triple
# pins the documented acquisition order under it.
run cmake -B build-rank -S . -DCMAKE_BUILD_TYPE=Debug -DTXML_LOCK_RANK=ON
run cmake --build build-rank -j "$JOBS" --target lock_rank_test util_test
run ctest --test-dir build-rank --output-on-failure --no-tests=error \
    -j "$JOBS" -R "LockRank|Status|txml_lint"
# -DTXML_LOCK_RANK=OFF must compile away -Werror-clean (build only).
run cmake -B build-norank -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTXML_LOCK_RANK=OFF
run cmake --build build-norank -j "$JOBS"

echo "=== All checks passed ==="
