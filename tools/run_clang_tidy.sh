#!/usr/bin/env bash
# Runs the check set pinned in .clang-tidy over the implementation files,
# driven by the compile database the default build exports
# (CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS ON, so any configure
# of build/ leaves build/compile_commands.json behind — no special
# configuration needed). This is the lightweight path for hosts that have
# clang-tidy but not clang as the compiler; the full -DTXML_ANALYZE=ON
# configuration (scripts/check.sh stage 4) additionally runs the
# thread-safety analysis and wires clang-tidy into every TU at build time.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
[[ "${1:-}" == "--" ]] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ERROR: clang-tidy not found on PATH" >&2
  exit 1
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "+ cmake -B $BUILD_DIR -S .  (exporting compile_commands.json)" >&2
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

# run-clang-tidy parallelizes when available; otherwise loop serially.
if command -v run-clang-tidy >/dev/null 2>&1; then
  exec run-clang-tidy -quiet -p "$BUILD_DIR" "$@" "src/.*\.cc\$"
fi

status=0
while IFS= read -r file; do
  echo "+ clang-tidy $file" >&2
  clang-tidy -quiet -p "$BUILD_DIR" "$@" "$file" || status=1
done < <(find src -name '*.cc' | sort)
exit $status
