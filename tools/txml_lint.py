#!/usr/bin/env python3
"""txml_lint: project-invariant lint for the txml tree.

Plain-Python (no clang, no third-party packages) textual enforcement of
repo invariants that the compiler cannot or does not check, run as a
tier-1 ctest (tests/CMakeLists.txt) and as stage 7 of scripts/check.sh:

  raw-primitive   No raw std::mutex / std::condition_variable /
                  std::thread outside src/util/ — every lock goes through
                  the rank-checked wrappers of src/util/synchronization.h
                  and every thread through src/util/thread.h, so ordering
                  and lifecycle instrumentation see all of them.
  frame-coverage  Every wire FrameType enum value has (a) a fuzz corpus
                  seed fuzz/corpus/wire/<snake_case_name> and (b) a
                  FrameType::k<Name> reference somewhere under tests/ —
                  a frame nobody fuzzes or tests is a frame whose format
                  drifts silently.
  lock-rank       Every Mutex/SharedMutex declaration in src/ names its
                  LockRank (DESIGN.md §16) on the declaration line, or
                  carries a `// rank:` comment pointing at the
                  constructor that supplies it. (The missing default
                  constructor enforces this at compile time too; the lint
                  keeps the rank *visible at the declaration*.)
  no-assert       No assert( in src/ or fuzz/ — release builds compile
                  assert away (NDEBUG), so invariants use TXML_CHECK /
                  TXML_DCHECK / TXML_LOG_FATAL instead. static_assert is
                  fine. Tests may use whatever gtest wants.

Usage:
  txml_lint.py [--root REPO_DIR]   lint the tree; exit 1 on any finding
  txml_lint.py --self-test         prove each rule rejects a seeded
                                   violation and passes a clean tree
"""

import argparse
import os
import re
import sys
import tempfile

CXX_EXTENSIONS = (".h", ".cc")

RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:mutex|condition_variable|thread)\b")
FRAME_ENUM_RE = re.compile(
    r"^\s*k([A-Z]\w*)\s*=\s*\d+\s*,", re.MULTILINE)
LOCK_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+\w+\s*(?:;|\{)")
ASSERT_RE = re.compile(r"(?<![\w])assert\s*\(")


def strip_line_comment(line):
    """Drops a // comment (naive: ignores // inside string literals,
    which the tree's style never produces on lines these rules match)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def snake_case(name):
    """CamelCase enum name -> corpus seed file name (QueryRequest ->
    query_request)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def iter_source_files(root, subdir):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for filename in sorted(filenames):
            if filename.endswith(CXX_EXTENSIONS):
                yield os.path.join(dirpath, filename)


def relpath(root, path):
    return os.path.relpath(path, root)


def check_raw_primitives(root):
    """raw-primitive: std locking/threading types only inside src/util/."""
    findings = []
    for path in iter_source_files(root, "src"):
        rel = relpath(root, path)
        if rel.startswith(os.path.join("src", "util") + os.sep):
            continue
        with open(path, encoding="utf-8") as fp:
            for lineno, line in enumerate(fp, 1):
                code = strip_line_comment(line)
                match = RAW_PRIMITIVE_RE.search(code)
                if match:
                    findings.append(
                        ("raw-primitive", rel, lineno,
                         f"{match.group(0)} outside src/util/; use the "
                         "wrappers in src/util/synchronization.h / "
                         "src/util/thread.h"))
    return findings


def parse_frame_types(root):
    wire_h = os.path.join(root, "src", "net", "wire.h")
    with open(wire_h, encoding="utf-8") as fp:
        text = fp.read()
    enum = re.search(
        r"enum class FrameType[^{]*\{(.*?)\}\s*;", text, re.DOTALL)
    if enum is None:
        return None
    return FRAME_ENUM_RE.findall(enum.group(1))


def check_frame_coverage(root):
    """frame-coverage: every FrameType has a corpus seed and a test ref."""
    findings = []
    names = parse_frame_types(root)
    wire_rel = os.path.join("src", "net", "wire.h")
    if names is None:
        return [("frame-coverage", wire_rel, 1,
                 "could not locate the FrameType enum")]
    corpus_dir = os.path.join(root, "fuzz", "corpus", "wire")
    tests_text = []
    for path in iter_source_files(root, "tests"):
        with open(path, encoding="utf-8") as fp:
            tests_text.append(fp.read())
    tests_text = "\n".join(tests_text)
    for name in names:
        seed = snake_case(name)
        if not os.path.isfile(os.path.join(corpus_dir, seed)):
            findings.append(
                ("frame-coverage", wire_rel, 1,
                 f"FrameType::k{name} has no fuzz corpus seed "
                 f"fuzz/corpus/wire/{seed} (regenerate with "
                 "build/fuzz/gen_seed_corpus fuzz/corpus)"))
        if f"FrameType::k{name}" not in tests_text:
            findings.append(
                ("frame-coverage", wire_rel, 1,
                 f"FrameType::k{name} is never referenced under tests/ "
                 "(add it to WireTest.EveryFrameTypeHasACodecRoundTrip)"))
    return findings


def check_lock_ranks(root):
    """lock-rank: lock declarations name their rank where they are
    declared."""
    findings = []
    for path in iter_source_files(root, "src"):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as fp:
            for lineno, line in enumerate(fp, 1):
                if not LOCK_DECL_RE.match(line):
                    continue
                if "LockRank::" in line or "// rank:" in line:
                    continue
                findings.append(
                    ("lock-rank", rel, lineno,
                     "Mutex/SharedMutex declaration without a LockRank "
                     "(see src/util/lock_rank.h and DESIGN.md §16); "
                     "initialize with {LockRank::k...} or add a "
                     "`// rank:` comment naming the constructor that "
                     "supplies it"))
    return findings


def check_no_assert(root):
    """no-assert: no NDEBUG-erasable assert( outside tests/."""
    findings = []
    for subdir in ("src", "fuzz"):
        for path in iter_source_files(root, subdir):
            rel = relpath(root, path)
            with open(path, encoding="utf-8") as fp:
                for lineno, line in enumerate(fp, 1):
                    code = strip_line_comment(line)
                    if ASSERT_RE.search(code):
                        findings.append(
                            ("no-assert", rel, lineno,
                             "assert( compiles away under NDEBUG; use "
                             "TXML_CHECK / TXML_DCHECK instead"))
    return findings


CHECKS = (
    check_raw_primitives,
    check_frame_coverage,
    check_lock_ranks,
    check_no_assert,
)


def run_lint(root):
    findings = []
    for check in CHECKS:
        findings.extend(check(root))
    return findings


def report(findings):
    for rule, rel, lineno, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(f"txml_lint: {len(findings)} finding(s)")


# ---------------------------------------------------------------------------
# self-test


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(text)


CLEAN_WIRE_H = """
enum class FrameType : uint8_t {
  kQueryRequest = 1,
};
"""

SEEDED_WIRE_H = """
enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kGhostFrame = 2,
};
"""


def build_tree(root, seeded):
    """A miniature repo; `seeded` plants exactly one violation per rule."""
    write(root, "src/net/wire.h", SEEDED_WIRE_H if seeded else CLEAN_WIRE_H)
    write(root, "fuzz/corpus/wire/query_request", "seed")
    write(root, "tests/net_test.cc",
          "// refs FrameType::kQueryRequest round trip\n")
    write(root, "src/util/synchronization.h",
          "// wrappers may use std::mutex here\n"
          "#include <mutex>\nstd::mutex raw_;\n")
    good = "mutable Mutex mu_{LockRank::kServer};\n"
    bad = ("std::thread worker_;\n"          # raw-primitive
           "Mutex mu_;\n"                    # lock-rank
           "void F() { assert(true); }\n")   # no-assert
    write(root, "src/core/widget.h", good + (bad if seeded else ""))
    # Negative-space checks: commented-out primitives never count, and a
    # ctor-supplied rank is accepted via the marker comment.
    write(root, "src/core/ok.cc",
          "// std::thread in a comment is fine\n"
          "Mutex mu;  // rank: kCommitStripe (ctor-initialized)\n"
          "static_assert(1 + 1 == 2);\n")


def self_test():
    with tempfile.TemporaryDirectory(prefix="txml_lint_selftest") as tmp:
        clean = os.path.join(tmp, "clean")
        seeded = os.path.join(tmp, "seeded")
        build_tree(clean, seeded=False)
        build_tree(seeded, seeded=True)

        clean_findings = run_lint(clean)
        if clean_findings:
            print("self-test FAILED: clean tree produced findings:")
            report(clean_findings)
            return 1

        findings = run_lint(seeded)
        got_rules = {rule for rule, _, _, _ in findings}
        want_rules = {"raw-primitive", "frame-coverage", "lock-rank",
                      "no-assert"}
        missing = want_rules - got_rules
        if missing:
            print(f"self-test FAILED: rules {sorted(missing)} did not "
                  "reject their seeded violation; findings were:")
            report(findings)
            return 1
        # The ghost frame must be flagged twice: no seed AND no test ref.
        ghost = [f for f in findings if "kGhostFrame" in f[3]]
        if len(ghost) != 2:
            print("self-test FAILED: expected 2 kGhostFrame findings "
                  f"(missing seed + missing test ref), got {len(ghost)}")
            report(findings)
            return 1
        print(f"self-test OK: clean tree 0 findings, seeded tree "
              f"{len(findings)} finding(s) across all {len(CHECKS)} rules")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's ../)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule rejects a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = run_lint(root)
    if findings:
        report(findings)
        return 1
    print("txml_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
