# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/doctime_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/scanall_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/collection_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/fti_oracle_test[1]_include.cmake")
