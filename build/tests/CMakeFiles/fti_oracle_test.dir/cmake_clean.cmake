file(REMOVE_RECURSE
  "CMakeFiles/fti_oracle_test.dir/fti_oracle_test.cc.o"
  "CMakeFiles/fti_oracle_test.dir/fti_oracle_test.cc.o.d"
  "fti_oracle_test"
  "fti_oracle_test.pdb"
  "fti_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fti_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
