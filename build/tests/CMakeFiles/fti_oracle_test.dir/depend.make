# Empty dependencies file for fti_oracle_test.
# This may be replaced when dependencies are built.
