file(REMOVE_RECURSE
  "CMakeFiles/lang_test.dir/lang_test.cc.o"
  "CMakeFiles/lang_test.dir/lang_test.cc.o.d"
  "lang_test"
  "lang_test.pdb"
  "lang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
