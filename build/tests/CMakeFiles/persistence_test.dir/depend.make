# Empty dependencies file for persistence_test.
# This may be replaced when dependencies are built.
