file(REMOVE_RECURSE
  "CMakeFiles/warehouse_test.dir/warehouse_test.cc.o"
  "CMakeFiles/warehouse_test.dir/warehouse_test.cc.o.d"
  "warehouse_test"
  "warehouse_test.pdb"
  "warehouse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
