# Empty dependencies file for warehouse_test.
# This may be replaced when dependencies are built.
