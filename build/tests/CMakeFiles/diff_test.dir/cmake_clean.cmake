file(REMOVE_RECURSE
  "CMakeFiles/diff_test.dir/diff_test.cc.o"
  "CMakeFiles/diff_test.dir/diff_test.cc.o.d"
  "diff_test"
  "diff_test.pdb"
  "diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
