file(REMOVE_RECURSE
  "CMakeFiles/scanall_oracle_test.dir/scanall_oracle_test.cc.o"
  "CMakeFiles/scanall_oracle_test.dir/scanall_oracle_test.cc.o.d"
  "scanall_oracle_test"
  "scanall_oracle_test.pdb"
  "scanall_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanall_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
