# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scanall_oracle_test.
