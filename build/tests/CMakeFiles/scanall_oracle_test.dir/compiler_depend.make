# Empty compiler generated dependencies file for scanall_oracle_test.
# This may be replaced when dependencies are built.
