# Empty dependencies file for collection_test.
# This may be replaced when dependencies are built.
