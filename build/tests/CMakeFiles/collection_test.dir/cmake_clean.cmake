file(REMOVE_RECURSE
  "CMakeFiles/collection_test.dir/collection_test.cc.o"
  "CMakeFiles/collection_test.dir/collection_test.cc.o.d"
  "collection_test"
  "collection_test.pdb"
  "collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
