# Empty dependencies file for doctime_test.
# This may be replaced when dependencies are built.
