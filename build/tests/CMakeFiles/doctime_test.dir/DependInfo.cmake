
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/doctime_test.cc" "tests/CMakeFiles/doctime_test.dir/doctime_test.cc.o" "gcc" "tests/CMakeFiles/doctime_test.dir/doctime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/txml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/txml_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/txml_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/txml_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/txml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/txml_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/txml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
