file(REMOVE_RECURSE
  "CMakeFiles/doctime_test.dir/doctime_test.cc.o"
  "CMakeFiles/doctime_test.dir/doctime_test.cc.o.d"
  "doctime_test"
  "doctime_test.pdb"
  "doctime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doctime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
