# Empty compiler generated dependencies file for web_warehouse.
# This may be replaced when dependencies are built.
