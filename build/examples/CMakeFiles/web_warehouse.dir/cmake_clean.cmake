file(REMOVE_RECURSE
  "CMakeFiles/web_warehouse.dir/web_warehouse.cpp.o"
  "CMakeFiles/web_warehouse.dir/web_warehouse.cpp.o.d"
  "web_warehouse"
  "web_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
