# Empty dependencies file for news_feed.
# This may be replaced when dependencies are built.
