file(REMOVE_RECURSE
  "CMakeFiles/news_feed.dir/news_feed.cpp.o"
  "CMakeFiles/news_feed.dir/news_feed.cpp.o.d"
  "news_feed"
  "news_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
