file(REMOVE_RECURSE
  "CMakeFiles/restaurant_guide.dir/restaurant_guide.cpp.o"
  "CMakeFiles/restaurant_guide.dir/restaurant_guide.cpp.o.d"
  "restaurant_guide"
  "restaurant_guide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_guide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
