# Empty dependencies file for restaurant_guide.
# This may be replaced when dependencies are built.
