file(REMOVE_RECURSE
  "CMakeFiles/change_audit.dir/change_audit.cpp.o"
  "CMakeFiles/change_audit.dir/change_audit.cpp.o.d"
  "change_audit"
  "change_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
