# Empty dependencies file for change_audit.
# This may be replaced when dependencies are built.
