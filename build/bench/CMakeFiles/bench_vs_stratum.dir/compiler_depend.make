# Empty compiler generated dependencies file for bench_vs_stratum.
# This may be replaced when dependencies are built.
