file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_stratum.dir/bench_vs_stratum.cc.o"
  "CMakeFiles/bench_vs_stratum.dir/bench_vs_stratum.cc.o.d"
  "bench_vs_stratum"
  "bench_vs_stratum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_stratum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
