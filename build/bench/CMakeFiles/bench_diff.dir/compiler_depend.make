# Empty compiler generated dependencies file for bench_diff.
# This may be replaced when dependencies are built.
