file(REMOVE_RECURSE
  "CMakeFiles/bench_diff.dir/bench_diff.cc.o"
  "CMakeFiles/bench_diff.dir/bench_diff.cc.o.d"
  "bench_diff"
  "bench_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
