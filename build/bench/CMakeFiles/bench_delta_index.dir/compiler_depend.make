# Empty compiler generated dependencies file for bench_delta_index.
# This may be replaced when dependencies are built.
