file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_index.dir/bench_delta_index.cc.o"
  "CMakeFiles/bench_delta_index.dir/bench_delta_index.cc.o.d"
  "bench_delta_index"
  "bench_delta_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
