file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_queries.dir/bench_paper_queries.cc.o"
  "CMakeFiles/bench_paper_queries.dir/bench_paper_queries.cc.o.d"
  "bench_paper_queries"
  "bench_paper_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
