# Empty compiler generated dependencies file for bench_storage_space.
# This may be replaced when dependencies are built.
