file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_space.dir/bench_storage_space.cc.o"
  "CMakeFiles/bench_storage_space.dir/bench_storage_space.cc.o.d"
  "bench_storage_space"
  "bench_storage_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
