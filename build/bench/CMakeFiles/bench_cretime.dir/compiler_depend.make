# Empty compiler generated dependencies file for bench_cretime.
# This may be replaced when dependencies are built.
