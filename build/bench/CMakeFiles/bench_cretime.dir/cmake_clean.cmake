file(REMOVE_RECURSE
  "CMakeFiles/bench_cretime.dir/bench_cretime.cc.o"
  "CMakeFiles/bench_cretime.dir/bench_cretime.cc.o.d"
  "bench_cretime"
  "bench_cretime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cretime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
