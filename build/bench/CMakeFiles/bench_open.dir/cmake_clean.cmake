file(REMOVE_RECURSE
  "CMakeFiles/bench_open.dir/bench_open.cc.o"
  "CMakeFiles/bench_open.dir/bench_open.cc.o.d"
  "bench_open"
  "bench_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
