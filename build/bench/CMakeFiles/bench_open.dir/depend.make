# Empty dependencies file for bench_open.
# This may be replaced when dependencies are built.
