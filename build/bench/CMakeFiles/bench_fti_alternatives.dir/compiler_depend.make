# Empty compiler generated dependencies file for bench_fti_alternatives.
# This may be replaced when dependencies are built.
