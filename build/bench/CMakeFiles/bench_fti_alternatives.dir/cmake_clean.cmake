file(REMOVE_RECURSE
  "CMakeFiles/bench_fti_alternatives.dir/bench_fti_alternatives.cc.o"
  "CMakeFiles/bench_fti_alternatives.dir/bench_fti_alternatives.cc.o.d"
  "bench_fti_alternatives"
  "bench_fti_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fti_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
