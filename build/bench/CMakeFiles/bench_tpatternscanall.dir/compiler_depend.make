# Empty compiler generated dependencies file for bench_tpatternscanall.
# This may be replaced when dependencies are built.
