file(REMOVE_RECURSE
  "CMakeFiles/bench_tpatternscanall.dir/bench_tpatternscanall.cc.o"
  "CMakeFiles/bench_tpatternscanall.dir/bench_tpatternscanall.cc.o.d"
  "bench_tpatternscanall"
  "bench_tpatternscanall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpatternscanall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
