file(REMOVE_RECURSE
  "CMakeFiles/bench_reconstruct.dir/bench_reconstruct.cc.o"
  "CMakeFiles/bench_reconstruct.dir/bench_reconstruct.cc.o.d"
  "bench_reconstruct"
  "bench_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
