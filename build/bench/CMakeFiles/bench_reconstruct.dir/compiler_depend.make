# Empty compiler generated dependencies file for bench_reconstruct.
# This may be replaced when dependencies are built.
