file(REMOVE_RECURSE
  "libtxml_storage.a"
)
