# Empty dependencies file for txml_storage.
# This may be replaced when dependencies are built.
