
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/delta_index.cc" "src/storage/CMakeFiles/txml_storage.dir/delta_index.cc.o" "gcc" "src/storage/CMakeFiles/txml_storage.dir/delta_index.cc.o.d"
  "/root/repo/src/storage/store.cc" "src/storage/CMakeFiles/txml_storage.dir/store.cc.o" "gcc" "src/storage/CMakeFiles/txml_storage.dir/store.cc.o.d"
  "/root/repo/src/storage/stratum_store.cc" "src/storage/CMakeFiles/txml_storage.dir/stratum_store.cc.o" "gcc" "src/storage/CMakeFiles/txml_storage.dir/stratum_store.cc.o.d"
  "/root/repo/src/storage/versioned_document.cc" "src/storage/CMakeFiles/txml_storage.dir/versioned_document.cc.o" "gcc" "src/storage/CMakeFiles/txml_storage.dir/versioned_document.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diff/CMakeFiles/txml_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/txml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
