file(REMOVE_RECURSE
  "CMakeFiles/txml_storage.dir/delta_index.cc.o"
  "CMakeFiles/txml_storage.dir/delta_index.cc.o.d"
  "CMakeFiles/txml_storage.dir/store.cc.o"
  "CMakeFiles/txml_storage.dir/store.cc.o.d"
  "CMakeFiles/txml_storage.dir/stratum_store.cc.o"
  "CMakeFiles/txml_storage.dir/stratum_store.cc.o.d"
  "CMakeFiles/txml_storage.dir/versioned_document.cc.o"
  "CMakeFiles/txml_storage.dir/versioned_document.cc.o.d"
  "libtxml_storage.a"
  "libtxml_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
