# Empty compiler generated dependencies file for txml_lang.
# This may be replaced when dependencies are built.
