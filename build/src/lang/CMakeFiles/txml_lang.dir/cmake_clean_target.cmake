file(REMOVE_RECURSE
  "libtxml_lang.a"
)
