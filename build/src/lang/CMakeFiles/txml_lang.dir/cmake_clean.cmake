file(REMOVE_RECURSE
  "CMakeFiles/txml_lang.dir/ast.cc.o"
  "CMakeFiles/txml_lang.dir/ast.cc.o.d"
  "CMakeFiles/txml_lang.dir/executor.cc.o"
  "CMakeFiles/txml_lang.dir/executor.cc.o.d"
  "CMakeFiles/txml_lang.dir/lexer.cc.o"
  "CMakeFiles/txml_lang.dir/lexer.cc.o.d"
  "CMakeFiles/txml_lang.dir/parser.cc.o"
  "CMakeFiles/txml_lang.dir/parser.cc.o.d"
  "libtxml_lang.a"
  "libtxml_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
