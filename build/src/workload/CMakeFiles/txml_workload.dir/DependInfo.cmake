
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/restaurant.cc" "src/workload/CMakeFiles/txml_workload.dir/restaurant.cc.o" "gcc" "src/workload/CMakeFiles/txml_workload.dir/restaurant.cc.o.d"
  "/root/repo/src/workload/tdocgen.cc" "src/workload/CMakeFiles/txml_workload.dir/tdocgen.cc.o" "gcc" "src/workload/CMakeFiles/txml_workload.dir/tdocgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/txml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
