file(REMOVE_RECURSE
  "libtxml_workload.a"
)
