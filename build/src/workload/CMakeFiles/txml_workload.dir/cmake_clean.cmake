file(REMOVE_RECURSE
  "CMakeFiles/txml_workload.dir/restaurant.cc.o"
  "CMakeFiles/txml_workload.dir/restaurant.cc.o.d"
  "CMakeFiles/txml_workload.dir/tdocgen.cc.o"
  "CMakeFiles/txml_workload.dir/tdocgen.cc.o.d"
  "libtxml_workload.a"
  "libtxml_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
