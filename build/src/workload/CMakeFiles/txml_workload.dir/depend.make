# Empty dependencies file for txml_workload.
# This may be replaced when dependencies are built.
