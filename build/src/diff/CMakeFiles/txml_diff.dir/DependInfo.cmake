
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diff/diff.cc" "src/diff/CMakeFiles/txml_diff.dir/diff.cc.o" "gcc" "src/diff/CMakeFiles/txml_diff.dir/diff.cc.o.d"
  "/root/repo/src/diff/edit_script.cc" "src/diff/CMakeFiles/txml_diff.dir/edit_script.cc.o" "gcc" "src/diff/CMakeFiles/txml_diff.dir/edit_script.cc.o.d"
  "/root/repo/src/diff/matcher.cc" "src/diff/CMakeFiles/txml_diff.dir/matcher.cc.o" "gcc" "src/diff/CMakeFiles/txml_diff.dir/matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/txml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
