# Empty dependencies file for txml_diff.
# This may be replaced when dependencies are built.
