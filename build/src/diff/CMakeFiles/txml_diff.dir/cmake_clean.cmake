file(REMOVE_RECURSE
  "CMakeFiles/txml_diff.dir/diff.cc.o"
  "CMakeFiles/txml_diff.dir/diff.cc.o.d"
  "CMakeFiles/txml_diff.dir/edit_script.cc.o"
  "CMakeFiles/txml_diff.dir/edit_script.cc.o.d"
  "CMakeFiles/txml_diff.dir/matcher.cc.o"
  "CMakeFiles/txml_diff.dir/matcher.cc.o.d"
  "libtxml_diff.a"
  "libtxml_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
