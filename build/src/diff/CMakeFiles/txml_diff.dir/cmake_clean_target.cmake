file(REMOVE_RECURSE
  "libtxml_diff.a"
)
