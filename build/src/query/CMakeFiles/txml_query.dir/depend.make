# Empty dependencies file for txml_query.
# This may be replaced when dependencies are built.
