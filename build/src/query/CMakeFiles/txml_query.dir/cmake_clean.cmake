file(REMOVE_RECURSE
  "CMakeFiles/txml_query.dir/diff_op.cc.o"
  "CMakeFiles/txml_query.dir/diff_op.cc.o.d"
  "CMakeFiles/txml_query.dir/history_ops.cc.o"
  "CMakeFiles/txml_query.dir/history_ops.cc.o.d"
  "CMakeFiles/txml_query.dir/scan.cc.o"
  "CMakeFiles/txml_query.dir/scan.cc.o.d"
  "CMakeFiles/txml_query.dir/time_ops.cc.o"
  "CMakeFiles/txml_query.dir/time_ops.cc.o.d"
  "libtxml_query.a"
  "libtxml_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
