file(REMOVE_RECURSE
  "libtxml_query.a"
)
