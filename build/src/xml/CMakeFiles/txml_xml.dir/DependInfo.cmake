
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/codec.cc" "src/xml/CMakeFiles/txml_xml.dir/codec.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/codec.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/xml/CMakeFiles/txml_xml.dir/node.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/xml/CMakeFiles/txml_xml.dir/parser.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/parser.cc.o.d"
  "/root/repo/src/xml/path.cc" "src/xml/CMakeFiles/txml_xml.dir/path.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/path.cc.o.d"
  "/root/repo/src/xml/pattern.cc" "src/xml/CMakeFiles/txml_xml.dir/pattern.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/pattern.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/xml/CMakeFiles/txml_xml.dir/serializer.cc.o" "gcc" "src/xml/CMakeFiles/txml_xml.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
