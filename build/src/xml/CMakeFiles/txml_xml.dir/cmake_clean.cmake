file(REMOVE_RECURSE
  "CMakeFiles/txml_xml.dir/codec.cc.o"
  "CMakeFiles/txml_xml.dir/codec.cc.o.d"
  "CMakeFiles/txml_xml.dir/node.cc.o"
  "CMakeFiles/txml_xml.dir/node.cc.o.d"
  "CMakeFiles/txml_xml.dir/parser.cc.o"
  "CMakeFiles/txml_xml.dir/parser.cc.o.d"
  "CMakeFiles/txml_xml.dir/path.cc.o"
  "CMakeFiles/txml_xml.dir/path.cc.o.d"
  "CMakeFiles/txml_xml.dir/pattern.cc.o"
  "CMakeFiles/txml_xml.dir/pattern.cc.o.d"
  "CMakeFiles/txml_xml.dir/serializer.cc.o"
  "CMakeFiles/txml_xml.dir/serializer.cc.o.d"
  "libtxml_xml.a"
  "libtxml_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
