# Empty compiler generated dependencies file for txml_xml.
# This may be replaced when dependencies are built.
