file(REMOVE_RECURSE
  "libtxml_xml.a"
)
