file(REMOVE_RECURSE
  "CMakeFiles/txml_util.dir/coding.cc.o"
  "CMakeFiles/txml_util.dir/coding.cc.o.d"
  "CMakeFiles/txml_util.dir/crc32c.cc.o"
  "CMakeFiles/txml_util.dir/crc32c.cc.o.d"
  "CMakeFiles/txml_util.dir/env.cc.o"
  "CMakeFiles/txml_util.dir/env.cc.o.d"
  "CMakeFiles/txml_util.dir/status.cc.o"
  "CMakeFiles/txml_util.dir/status.cc.o.d"
  "CMakeFiles/txml_util.dir/strings.cc.o"
  "CMakeFiles/txml_util.dir/strings.cc.o.d"
  "CMakeFiles/txml_util.dir/timestamp.cc.o"
  "CMakeFiles/txml_util.dir/timestamp.cc.o.d"
  "libtxml_util.a"
  "libtxml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
