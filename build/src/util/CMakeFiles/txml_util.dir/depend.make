# Empty dependencies file for txml_util.
# This may be replaced when dependencies are built.
