file(REMOVE_RECURSE
  "libtxml_util.a"
)
