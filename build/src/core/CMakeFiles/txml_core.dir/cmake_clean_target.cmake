file(REMOVE_RECURSE
  "libtxml_core.a"
)
