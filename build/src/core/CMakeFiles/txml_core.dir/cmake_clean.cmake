file(REMOVE_RECURSE
  "CMakeFiles/txml_core.dir/database.cc.o"
  "CMakeFiles/txml_core.dir/database.cc.o.d"
  "libtxml_core.a"
  "libtxml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
