# Empty dependencies file for txml_core.
# This may be replaced when dependencies are built.
