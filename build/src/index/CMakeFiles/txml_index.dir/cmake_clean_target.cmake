file(REMOVE_RECURSE
  "libtxml_index.a"
)
