# Empty dependencies file for txml_index.
# This may be replaced when dependencies are built.
