
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/delta_fti.cc" "src/index/CMakeFiles/txml_index.dir/delta_fti.cc.o" "gcc" "src/index/CMakeFiles/txml_index.dir/delta_fti.cc.o.d"
  "/root/repo/src/index/doctime_index.cc" "src/index/CMakeFiles/txml_index.dir/doctime_index.cc.o" "gcc" "src/index/CMakeFiles/txml_index.dir/doctime_index.cc.o.d"
  "/root/repo/src/index/fti.cc" "src/index/CMakeFiles/txml_index.dir/fti.cc.o" "gcc" "src/index/CMakeFiles/txml_index.dir/fti.cc.o.d"
  "/root/repo/src/index/lifetime_index.cc" "src/index/CMakeFiles/txml_index.dir/lifetime_index.cc.o" "gcc" "src/index/CMakeFiles/txml_index.dir/lifetime_index.cc.o.d"
  "/root/repo/src/index/posting.cc" "src/index/CMakeFiles/txml_index.dir/posting.cc.o" "gcc" "src/index/CMakeFiles/txml_index.dir/posting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/txml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/txml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/txml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/txml_diff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
