file(REMOVE_RECURSE
  "CMakeFiles/txml_index.dir/delta_fti.cc.o"
  "CMakeFiles/txml_index.dir/delta_fti.cc.o.d"
  "CMakeFiles/txml_index.dir/doctime_index.cc.o"
  "CMakeFiles/txml_index.dir/doctime_index.cc.o.d"
  "CMakeFiles/txml_index.dir/fti.cc.o"
  "CMakeFiles/txml_index.dir/fti.cc.o.d"
  "CMakeFiles/txml_index.dir/lifetime_index.cc.o"
  "CMakeFiles/txml_index.dir/lifetime_index.cc.o.d"
  "CMakeFiles/txml_index.dir/posting.cc.o"
  "CMakeFiles/txml_index.dir/posting.cc.o.d"
  "libtxml_index.a"
  "libtxml_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txml_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
